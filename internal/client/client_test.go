// Package client's tests double as the weak-integration integration suite:
// the full Section 4 scenario driven through the wire protocol over both
// net.Pipe and TCP.
package client

import (
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/active"
	"repro/internal/builder"
	"repro/internal/catalog"
	"repro/internal/custlang"
	"repro/internal/event"
	"repro/internal/geodb"
	"repro/internal/geom"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/ui"
	"repro/internal/uikit"
)

// mustOpen replaces the removed geodb.MustOpen for tests: Open or fail the
// test. The library's open/recovery path returns errors instead of
// panicking, so a corrupt page file degrades gracefully in servers.
func mustOpen(t testing.TB, opts geodb.Options) *geodb.DB {
	t.Helper()
	db, err := geodb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

const figure6 = `
For user juliano application pole_manager
schema phone_net display as Null
class Pole display
  control as poleWidget
  presentation as pointFormat
  instances
    display attribute pole_composition as composed_text
      from pole.material pole.diameter pole.height
      using composed_text.notify()
    display attribute pole_supplier as text
      from get_supplier_name(pole_supplier)
    display attribute pole_location as Null
`

// serverWorld builds the DBMS side: database, rules, library, backend.
func serverWorld(t testing.TB) (*ui.DirectBackend, *uikit.Library, []catalog.OID) {
	t.Helper()
	db := mustOpen(t, geodb.Options{Name: "GEO"})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.DefineSchema("phone_net"))
	must(db.DefineClass("phone_net", catalog.Class{
		Name:  "Supplier",
		Attrs: []catalog.Field{catalog.F("name", catalog.Scalar(catalog.KindText))},
	}))
	must(db.DefineClass("phone_net", catalog.Class{
		Name: "Pole",
		Attrs: []catalog.Field{
			catalog.F("pole_type", catalog.Scalar(catalog.KindInteger)),
			catalog.F("pole_composition", catalog.TupleOf(
				catalog.F("pole_material", catalog.Scalar(catalog.KindText)),
				catalog.F("pole_diameter", catalog.Scalar(catalog.KindFloat)),
				catalog.F("pole_height", catalog.Scalar(catalog.KindFloat)),
			)),
			catalog.F("pole_supplier", catalog.RefTo("Supplier")),
			catalog.F("pole_location", catalog.Scalar(catalog.KindGeometry)),
			catalog.F("pole_picture", catalog.Scalar(catalog.KindBitmap)),
			catalog.F("pole_historic", catalog.Scalar(catalog.KindText)),
		},
		Methods: []catalog.Method{{Name: "get_supplier_name", Params: []string{"Supplier"}}},
	}))
	must(db.RegisterMethod("phone_net", "Pole", "get_supplier_name",
		func(db *geodb.DB, self geodb.Instance, args ...catalog.Value) (catalog.Value, error) {
			ref, _ := self.Get("pole_supplier")
			if ref.IsNull() || ref.Ref == catalog.NilOID {
				return catalog.TextVal(""), nil
			}
			sup, err := db.GetValue(event.Context{}, ref.Ref)
			if err != nil {
				return catalog.Value{}, err
			}
			name, _ := sup.Get("name")
			return name, nil
		}))
	setup := event.Context{Application: "setup"}
	sup, err := db.InsertMap(setup, "phone_net", "Supplier", map[string]catalog.Value{
		"name": catalog.TextVal("ACME Postes")})
	must(err)
	var poles []catalog.OID
	for i := 0; i < 4; i++ {
		oid, err := db.InsertMap(setup, "phone_net", "Pole", map[string]catalog.Value{
			"pole_type": catalog.IntVal(int64(i)),
			"pole_composition": catalog.TupleVal(
				catalog.TextVal("wood"), catalog.FloatVal(0.3), catalog.FloatVal(9.5)),
			"pole_supplier": catalog.RefVal(sup),
			"pole_location": catalog.GeomVal(geom.Pt(float64(i), float64(i))),
		})
		must(err)
		poles = append(poles, oid)
	}
	lib := uikit.Kernel()
	must(lib.Specialize("poleWidget", "button", func(w *uikit.Widget) { w.Kind = uikit.KindSlider }))
	must(lib.Specialize("composed_text", "text", nil))
	engine := active.NewEngine()
	analyzer := &custlang.Analyzer{Cat: db.Catalog(), Lib: lib}
	if _, err := analyzer.Install(engine, figure6); err != nil {
		t.Fatal(err)
	}
	return ui.NewDirectBackend(db, engine), lib, poles
}

// pipePair starts a server over an in-process pipe and returns the client.
func pipePair(t testing.TB, backend ui.Backend) *Client {
	t.Helper()
	srvConn, cliConn := net.Pipe()
	srv := server.New(backend)
	go srv.ServeConn(srvConn)
	c := NewClient(cliConn)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	return c
}

func TestValueWireRoundTrip(t *testing.T) {
	values := []catalog.Value{
		catalog.Null,
		catalog.IntVal(-5),
		catalog.FloatVal(3.5),
		catalog.TextVal("olá"),
		catalog.BoolVal(true),
		catalog.TupleVal(catalog.TextVal("wood"), catalog.FloatVal(0.3)),
		catalog.RefVal(9),
		catalog.GeomVal(geom.Pt(1, 2)),
		catalog.GeomVal(geom.LineString{geom.Pt(0, 0), geom.Pt(1, 1)}),
		catalog.GeomVal(nil),
		catalog.BitmapVal([]byte{0, 1, 2, 255}),
	}
	for _, v := range values {
		wv, err := proto.EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		back, err := proto.DecodeValue(wv)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if !v.Equal(back) {
			t.Fatalf("round trip %v -> %v", v, back)
		}
	}
}

func TestFramingErrors(t *testing.T) {
	var sb strings.Builder
	if err := proto.WriteMessage(&sb, map[string]string{"a": "b"}); err != nil {
		t.Fatal(err)
	}
	// Corrupt length prefix.
	data := []byte(sb.String())
	data[0] = 0xff
	var out map[string]string
	if err := proto.ReadMessage(strings.NewReader(string(data)), &out); !errors.Is(err, proto.ErrFrameTooLarge) {
		t.Fatalf("oversize frame: %v", err)
	}
	// Truncated payload.
	if err := proto.ReadMessage(strings.NewReader(sb.String()[:6]), &out); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWeakIntegrationSessionOverPipe(t *testing.T) {
	backend, lib, poles := serverWorld(t)
	cli := pipePair(t, backend)
	// The UI side has its own copy of the library (weak integration: the
	// client is an external module); the builder resolves methods through
	// the wire.
	bld := builder.New(lib, cli)
	s := ui.NewSession(cli, bld, event.Context{User: "juliano", Application: "pole_manager"})
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	win, err := s.OpenSchema("phone_net")
	if err != nil {
		t.Fatal(err)
	}
	// R1 crossed the wire: hidden schema window + auto-opened Pole window.
	if win.Prop("visible") != "false" {
		t.Fatal("customization did not cross the protocol")
	}
	classWin, err := s.Window("classset:Pole")
	if err != nil {
		t.Fatal(err)
	}
	if classWin.Find("poleWidget") == nil {
		t.Fatal("poleWidget missing over the wire")
	}
	if got := len(classWin.Find("map").Shapes); got != 4 {
		t.Fatalf("shapes = %d", got)
	}
	// Instance window: the method-sourced supplier panel requires a
	// CallMethod round trip.
	if _, err := s.OpenInstance(poles[0]); err != nil {
		t.Fatal(err)
	}
	instName := ""
	for _, n := range s.Windows() {
		if strings.HasPrefix(n, "instance:") {
			instName = n
		}
	}
	instWin, err := s.Window(instName)
	if err != nil {
		t.Fatal(err)
	}
	sup := instWin.Find("attr:pole_supplier")
	if got := sup.FindKind(uikit.KindText)[0].Prop("value"); got != "ACME Postes" {
		t.Fatalf("supplier over the wire = %q", got)
	}
	if instWin.Find("attr:pole_location") != nil {
		t.Fatal("Null attribute customization lost in transit")
	}
}

func TestWeakIntegrationOverTCP(t *testing.T) {
	backend, lib, _ := serverWorld(t)
	srv := server.New(backend)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	cli, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	bld := builder.New(lib, cli)
	s := ui.NewSession(cli, bld, event.Context{User: "maria", Application: "pole_manager"})
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	win, err := s.OpenSchema("phone_net")
	if err != nil {
		t.Fatal(err)
	}
	// maria gets the generic default over TCP.
	if win.Prop("visible") != "true" {
		t.Fatal("default session should show the schema window")
	}
	if _, err := s.OpenClass("phone_net", "Pole"); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteErrorsSurface(t *testing.T) {
	backend, _, _ := serverWorld(t)
	cli := pipePair(t, backend)
	if _, _, err := cli.GetSchema(event.Context{}, "ghost"); !errors.Is(err, proto.ErrRemote) {
		t.Fatalf("remote error: %v", err)
	}
	if _, _, err := cli.GetValue(event.Context{}, 9999); !errors.Is(err, proto.ErrRemote) {
		t.Fatalf("remote instance error: %v", err)
	}
	if _, err := cli.CallMethod(9999, "nope"); !errors.Is(err, proto.ErrRemote) {
		t.Fatalf("remote method error: %v", err)
	}
}

func TestSelectWhereOverWire(t *testing.T) {
	backend, _, _ := serverWorld(t)
	cli := pipePair(t, backend)
	got, err := cli.SelectWhere(event.Context{}, "phone_net", "Pole", []geodb.Filter{
		{Attr: "pole_type", Op: "ge", Value: catalog.IntVal(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("filtered = %d", len(got))
	}
	for _, in := range got {
		v, _ := in.Get("pole_type")
		if v.Int < 2 {
			t.Fatalf("filter violated: %v", v)
		}
	}
	// Spatial filter crosses the wire as WKT.
	got, err = cli.SelectWhere(event.Context{}, "phone_net", "Pole", []geodb.Filter{
		{Attr: "pole_location", Op: "intersects", Value: catalog.GeomVal(geom.R(0, 0, 1, 1))},
	})
	if err != nil || len(got) != 2 {
		t.Fatalf("spatial filter = %d, %v", len(got), err)
	}
}

func TestConcurrentClients(t *testing.T) {
	backend, lib, _ := serverWorld(t)
	srv := server.New(backend)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	done := make(chan error, 6)
	for i := 0; i < 6; i++ {
		go func() {
			cli, err := Dial(l.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer cli.Close()
			bld := builder.New(lib, cli)
			s := ui.NewSession(cli, bld, event.Context{User: "juliano", Application: "pole_manager"})
			if err := s.Connect(); err != nil {
				done <- err
				return
			}
			for j := 0; j < 10; j++ {
				if _, err := s.OpenSchema("phone_net"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestZoomedClassOverWire(t *testing.T) {
	backend, lib, _ := serverWorld(t)
	cli := pipePair(t, backend)
	bld := builder.New(lib, cli)
	s := ui.NewSession(cli, bld, event.Context{User: "juliano", Application: "pole_manager"})
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	// Poles at (0,0),(1,1),(2,2),(3,3): zoom to the first two.
	win, err := s.OpenClassZoomed("phone_net", "Pole", geom.R(-0.5, -0.5, 1.5, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(win.Find("map").Shapes); got != 2 {
		t.Fatalf("zoomed shapes over the wire = %d, want 2", got)
	}
	// Customization still crossed the protocol.
	if win.Find("poleWidget") == nil {
		t.Fatal("customization lost on zoomed wire path")
	}
	// A malformed viewport fails server-side with a remote error.
	if _, _, err := cli.GetClassWindowed(event.Context{}, "phone_net", "Pole",
		geom.EmptyRect); err != nil {
		// EmptyRect has infinite coordinates; its WKT is POLYGON EMPTY
		// which parses — accept either outcome as long as no panic.
		t.Logf("empty viewport: %v", err)
	}
}
