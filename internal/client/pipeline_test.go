// Tests for the pipelined, multiplexed client (DESIGN.md §10): concurrent
// callers sharing one connection, and the faultnet failure modes extended
// to several in-flight requests — a poisoned stream must fail every waiter
// fast and the client must reconnect cleanly afterwards.
package client

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/proto"
	"repro/internal/server"
)

// TestPipelinedConcurrentCallers multiplexes many goroutines over ONE
// client connection against a real pipelined server: every caller must get
// its own answer (the demux pairs responses by ID even when the server
// completes them out of order).
func TestPipelinedConcurrentCallers(t *testing.T) {
	backend, _, poles := serverWorld(t)
	srv := server.New(backend)
	srv.PipelineDepth = 8
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	cli, err := DialOptions(l.Addr().String(), Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx := event.Context{User: "juliano", Application: "pole_manager"}
	const callers, rounds = 8, 20
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				oid := poles[(c+r)%len(poles)]
				in, _, err := cli.GetValue(ctx, oid)
				if err != nil {
					t.Errorf("caller %d round %d: %v", c, r, err)
					return
				}
				if in.OID != oid {
					t.Errorf("caller %d round %d: demux mixed up instances: got %d want %d",
						c, r, in.OID, oid)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// fourInFlight issues 4 concurrent requests through cli and returns their
// errors once all have settled. The faulty peer must guarantee all 4 are
// written before it injects its failure.
func fourInFlight(cli *Client) [4]error {
	var wg sync.WaitGroup
	var errs [4]error
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = cli.GetSchema(event.Context{}, "phone_net")
		}(i)
	}
	wg.Wait()
	return errs
}

// TestPipelinedMidFrameDropFailsAllInFlight: the connection dies mid-frame
// while 4 requests are in flight. All 4 must fail fast (not hang waiting
// for responses that can never arrive), the connection is poisoned exactly
// once, and the next request reconnects cleanly to a healthy server.
func TestPipelinedMidFrameDropFailsAllInFlight(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	defer srv.Close()

	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		if dials == 1 {
			srvConn, cliConn := net.Pipe()
			go func() {
				// Absorb all 4 requests without answering, then die in the
				// middle of a response frame: a length prefix promising 100
				// bytes, one byte of payload, EOF.
				for i := 0; i < 4; i++ {
					var req proto.Request
					if err := proto.ReadMessage(srvConn, &req); err != nil {
						return
					}
				}
				srvConn.Write([]byte{0, 0, 0, 100, '{'})
				srvConn.Close()
			}()
			return cliConn, nil
		}
		srvConn, cliConn := net.Pipe()
		go srv.ServeConn(srvConn)
		return cliConn, nil
	}
	// No retry policy: the in-flight failures must surface, not heal.
	cli := New(Options{Dial: dial})
	defer cli.Close()

	poisonBefore := counter("gis_client_conn_poisoned_total")
	errs := fourInFlight(cli)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("in-flight request %d survived the mid-frame drop", i)
		}
	}
	if got := counter("gis_client_conn_poisoned_total"); got != poisonBefore+1 {
		t.Fatalf("poisoned = %d, want exactly %d", got, poisonBefore+1)
	}
	if dials != 1 {
		t.Fatalf("dials = %d before recovery, want 1", dials)
	}
	// Reconnect cleanly: the poisoned session is gone, a fresh dial works.
	if _, _, err := cli.GetSchema(event.Context{}, "phone_net"); err != nil {
		t.Fatalf("reconnect after poison failed: %v", err)
	}
	if dials != 2 {
		t.Fatalf("dials = %d after recovery, want 2", dials)
	}
}

// TestPipelinedIDMismatchFailsAllInFlight: a response with an ID that
// matches no in-flight request proves the stream is desynchronized; with 4
// requests outstanding, every one must fail fast and the connection must be
// poisoned, then a fresh dial recovers.
func TestPipelinedIDMismatchFailsAllInFlight(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	defer srv.Close()

	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		if dials == 1 {
			srvConn, cliConn := net.Pipe()
			go func() {
				for i := 0; i < 4; i++ {
					var req proto.Request
					if err := proto.ReadMessage(srvConn, &req); err != nil {
						return
					}
				}
				// An ID the client never issued.
				proto.WriteMessage(srvConn, proto.Response{ID: 99999})
			}()
			return cliConn, nil
		}
		srvConn, cliConn := net.Pipe()
		go srv.ServeConn(srvConn)
		return cliConn, nil
	}
	cli := New(Options{Dial: dial})
	defer cli.Close()

	poisonBefore := counter("gis_client_conn_poisoned_total")
	errs := fourInFlight(cli)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("in-flight request %d survived the ID desync", i)
		}
		if !strings.Contains(err.Error(), "response id") {
			t.Fatalf("request %d failed with %v, want an ID-desync error", i, err)
		}
	}
	if got := counter("gis_client_conn_poisoned_total"); got != poisonBefore+1 {
		t.Fatalf("poisoned = %d, want exactly %d", got, poisonBefore+1)
	}
	if _, _, err := cli.GetSchema(event.Context{}, "phone_net"); err != nil {
		t.Fatalf("reconnect after desync failed: %v", err)
	}
	if dials != 2 {
		t.Fatalf("dials = %d, want 2", dials)
	}
}
