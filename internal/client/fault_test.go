// Fault-injection tests for the weak-integration transport: the client's
// retry/reconnect/timeout/poisoning machinery against a server that is
// killed, stalls, drops connections mid-frame, or corrupts bytes — driven
// by the internal/faultnet harness so every failure is deterministic.
package client

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/builder"
	"repro/internal/event"
	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/ui"
)

func counter(name string) uint64 {
	return obs.Default().Counter(name).Value()
}

// testRetry is aggressive enough to ride out a server restart in tests
// without stretching wall-clock time.
var testRetry = RetryPolicy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond, MaxDelay: 80 * time.Millisecond}

// TestServerRestartMidSessionRecovers is the acceptance scenario of the
// robustness PR: a UI exploratory session is underway when the server dies;
// a replacement comes up on the same address; the client — configured with
// reconnect + retry — completes the rest of the scenario with zero
// user-visible errors, and the recovery is visible in the STATS snapshot.
func TestServerRestartMidSessionRecovers(t *testing.T) {
	backend, lib, poles := serverWorld(t)
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	srv1 := server.New(backend)
	go srv1.Serve(l1)

	reconBefore := counter("gis_client_reconnects_total")

	cli, err := DialOptions(addr, Options{
		Timeout: 2 * time.Second,
		Retry:   testRetry,
		Seed:    1997,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	bld := builder.New(lib, cli)
	s := ui.NewSession(cli, bld, event.Context{User: "juliano", Application: "pole_manager"})

	// --- First half of the exploratory scenario. ---
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	win, err := s.OpenSchema("phone_net")
	if err != nil {
		t.Fatal(err)
	}
	if win.Prop("visible") != "false" {
		t.Fatal("customization did not cross the protocol")
	}

	// --- Kill the server mid-session... ---
	srv1.Close()
	// ...and restart it on the same address.
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2 := server.New(backend)
	go srv2.Serve(l2)
	defer srv2.Close()

	// --- Second half: same session object, zero user-visible errors. ---
	classWin, err := s.OpenClass("phone_net", "Pole")
	if err != nil {
		t.Fatalf("session did not survive the restart: %v", err)
	}
	if classWin.Find("poleWidget") == nil {
		t.Fatal("customization lost after reconnect")
	}
	if got := len(classWin.Find("map").Shapes); got != 4 {
		t.Fatalf("shapes after reconnect = %d", got)
	}
	// The instance window exercises CallMethod over the reconnected link.
	if _, err := s.OpenInstance(poles[0]); err != nil {
		t.Fatal(err)
	}

	// The recovery is observable through the STATS verb: the client-side
	// counters live in the same process-wide registry the verb snapshots.
	snap, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["gis_client_reconnects_total"]; got < reconBefore+1 {
		t.Fatalf("gis_client_reconnects_total = %d, want > %d", got, reconBefore)
	}
	if _, ok := snap.Counters["gis_client_retries_total"]; !ok {
		t.Fatal("retry counter missing from STATS snapshot")
	}
	if _, ok := snap.Counters["gis_client_conn_poisoned_total"]; !ok {
		t.Fatal("poison counter missing from STATS snapshot")
	}
}

// TestMidFrameDropRecovered injects a connection that dies mid-frame on the
// first dial; the retry dials a clean replacement and the request succeeds
// transparently.
func TestMidFrameDropRecovered(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	defer srv.Close()

	dials := 0
	dial := func() (net.Conn, error) {
		srvConn, cliConn := net.Pipe()
		go srv.ServeConn(srvConn)
		dials++
		if dials == 1 {
			// The length prefix is 4 bytes: cut the very first frame in
			// half, after the prefix but inside the JSON payload.
			return faultnet.Wrap(cliConn, faultnet.Options{Seed: 11, DropAfterBytes: 10}), nil
		}
		return cliConn, nil
	}
	cli := New(Options{Dial: dial, Retry: testRetry, Seed: 7})
	defer cli.Close()

	if err := cli.Connect(event.Context{User: "maria"}); err != nil {
		t.Fatalf("drop not recovered: %v", err)
	}
	if dials != 2 {
		t.Fatalf("dials = %d, want 2 (initial + reconnect)", dials)
	}
}

// TestCorruptedStreamPoisonedAndRetried: a conn corrupting outbound bytes
// produces a server-side framing failure and a dead stream; the client
// poisons it and completes on a clean reconnect.
func TestCorruptedStreamPoisonedAndRetried(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	defer srv.Close()

	poisonBefore := counter("gis_client_conn_poisoned_total")
	dials := 0
	dial := func() (net.Conn, error) {
		srvConn, cliConn := net.Pipe()
		go srv.ServeConn(srvConn)
		dials++
		if dials == 1 {
			return faultnet.Wrap(cliConn, faultnet.Options{Seed: 3, CorruptEveryN: 8}), nil
		}
		return cliConn, nil
	}
	cli := New(Options{Dial: dial, Timeout: time.Second, Retry: testRetry, Seed: 5})
	defer cli.Close()

	if _, _, err := cli.GetSchema(event.Context{}, "phone_net"); err != nil {
		t.Fatalf("corruption not recovered: %v", err)
	}
	if dials < 2 {
		t.Fatalf("dials = %d, want reconnect after corruption", dials)
	}
	if got := counter("gis_client_conn_poisoned_total"); got <= poisonBefore {
		t.Fatal("corrupted conn was not poisoned")
	}
}

// blackHole returns a conn whose peer reads requests forever but never
// answers — a stalled server.
func blackHole() net.Conn {
	srvConn, cliConn := net.Pipe()
	//vet:ignore testleak -- the copier exits when the test closes its end of the pipe
	go io.Copy(io.Discard, srvConn)
	return cliConn
}

// TestTimeoutPoisonsAndReconnects: a stalled server trips the per-request
// deadline; the late (never-arriving) response must not be awaited, the conn
// is poisoned, and the retry reaches a healthy server.
func TestTimeoutPoisonsAndReconnects(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	defer srv.Close()

	timeoutsBefore := counter("gis_client_request_timeouts_total")
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		if dials == 1 {
			return blackHole(), nil
		}
		srvConn, cliConn := net.Pipe()
		go srv.ServeConn(srvConn)
		return cliConn, nil
	}
	cli := New(Options{
		Dial:    dial,
		Timeout: 80 * time.Millisecond,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond},
		Seed:    2,
	})
	defer cli.Close()

	start := time.Now()
	if _, _, err := cli.GetSchema(event.Context{}, "phone_net"); err != nil {
		t.Fatalf("timeout not recovered: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("recovery took %v; deadline not applied", d)
	}
	if got := counter("gis_client_request_timeouts_total"); got != timeoutsBefore+1 {
		t.Fatalf("gis_client_request_timeouts_total = %d, want %d", got, timeoutsBefore+1)
	}
}

// TestCallMethodNeverRetried: the one non-idempotent verb must fail fast on
// transport errors instead of re-running arbitrary database code.
func TestCallMethodNeverRetried(t *testing.T) {
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		c := blackHole()
		return c, nil
	}
	cli := New(Options{
		Dial:    dial,
		Timeout: 50 * time.Millisecond,
		Retry:   RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Seed:    4,
	})
	defer cli.Close()

	_, err := cli.CallMethod(1, "boom")
	if err == nil {
		t.Fatal("stalled CallMethod returned success")
	}
	if dials != 1 {
		t.Fatalf("CallMethod dialed %d times, want 1 (no retry)", dials)
	}
}

// TestIDMismatchPoisonsConnection: a response carrying the wrong ID proves
// the stream is desynchronized; the client must refuse to reuse the conn.
func TestIDMismatchPoisonsConnection(t *testing.T) {
	srvConn, cliConn := net.Pipe()
	defer srvConn.Close()
	// A fake server that answers every request with a bogus ID.
	go func() {
		for {
			var req proto.Request
			if err := proto.ReadMessage(srvConn, &req); err != nil {
				return
			}
			proto.WriteMessage(srvConn, proto.Response{ID: req.ID + 1000})
		}
	}()
	cli := NewClient(cliConn)
	defer cli.Close()

	poisonBefore := counter("gis_client_conn_poisoned_total")
	err := cli.Connect(event.Context{})
	if err == nil || !strings.Contains(err.Error(), "response id") {
		t.Fatalf("mismatch error = %v", err)
	}
	if got := counter("gis_client_conn_poisoned_total"); got != poisonBefore+1 {
		t.Fatal("desynced conn was not poisoned")
	}
	// With no dial function the client cannot recover: the next request
	// reports the missing connection instead of reusing the poisoned one.
	if err := cli.Connect(event.Context{}); !errors.Is(err, errNotConnected) {
		t.Fatalf("poisoned conn reused: %v", err)
	}
}

// TestRemoteErrorsAreNotRetried: an error answer from the server is an
// application result; retrying it would only repeat the work.
func TestRemoteErrorsAreNotRetried(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	defer srv.Close()
	dials := 0
	dial := func() (net.Conn, error) {
		srvConn, cliConn := net.Pipe()
		go srv.ServeConn(srvConn)
		dials++
		return cliConn, nil
	}
	cli := New(Options{Dial: dial, Retry: testRetry, Seed: 6})
	defer cli.Close()

	retriesBefore := counter("gis_client_retries_total")
	if _, _, err := cli.GetSchema(event.Context{}, "ghost"); !errors.Is(err, proto.ErrRemote) {
		t.Fatalf("remote error = %v", err)
	}
	if dials != 1 {
		t.Fatalf("remote error triggered %d dials", dials)
	}
	if got := counter("gis_client_retries_total"); got != retriesBefore {
		t.Fatal("remote error was retried")
	}
}

// TestPartialWritesAreInvisible: a link that fragments every write must not
// disturb framing at all — no retries, no poisoning, correct payloads.
func TestPartialWritesAreInvisible(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	defer srv.Close()
	srvConn, cliConn := net.Pipe()
	go srv.ServeConn(srvConn)
	fc := faultnet.Wrap(cliConn, faultnet.Options{Seed: 9, PartialWrites: true})
	cli := NewClient(fc)
	defer cli.Close()

	info, _, err := cli.GetSchema(event.Context{}, "phone_net")
	if err != nil {
		t.Fatalf("partial writes broke framing: %v", err)
	}
	if info.Name != "phone_net" || len(info.Classes) == 0 {
		t.Fatalf("schema over fragmented link = %+v", info)
	}
	if fc.Stats.PartialWrites.Load() == 0 {
		t.Fatal("harness injected no partial writes")
	}
}

// TestIdleDisconnectHealsTransparently: a server that disconnects idle
// clients (IdleTimeout) must not surface errors to a session that pauses
// between interactions, as exploratory users do.
func TestIdleDisconnectHealsTransparently(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	srv.IdleTimeout = 60 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	cli, err := DialOptions(l.Addr().String(), Options{Retry: testRetry, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, _, err := cli.GetSchema(event.Context{}, "phone_net"); err != nil {
		t.Fatal(err)
	}
	//vet:ignore testleak -- sleeps past the server's idle deadline; the disconnect is time-driven with no observable event
	time.Sleep(200 * time.Millisecond) // server disconnects the idle conn
	if _, _, err := cli.GetSchema(event.Context{}, "phone_net"); err != nil {
		t.Fatalf("idle disconnect surfaced to the session: %v", err)
	}
}
