package client

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/faultnet"
	"repro/internal/geodb"
	"repro/internal/geom"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/ui"
)

// stubBackend is a minimal ui.Backend whose GetSchema answers with the
// endpoint's tag, so tests can see which endpoint served a read. Setting
// fail makes it answer every verb with the replica-unavailable sentinel,
// imitating a lagging or detached replica.
type stubBackend struct {
	tag   string
	calls atomic.Int64
	fail  atomic.Bool
}

func (b *stubBackend) check() error {
	if b.fail.Load() {
		return errors.New(proto.ReplicaUnavailableMsg + ": stub down")
	}
	b.calls.Add(1)
	return nil
}

func (b *stubBackend) Connect(event.Context) error { return b.check() }

func (b *stubBackend) GetSchema(event.Context, string) (geodb.SchemaInfo, *spec.Customization, error) {
	if err := b.check(); err != nil {
		return geodb.SchemaInfo{}, nil, err
	}
	return geodb.SchemaInfo{Name: b.tag}, nil, nil
}

func (b *stubBackend) GetClass(event.Context, string, string) (ui.ClassData, *spec.Customization, error) {
	if err := b.check(); err != nil {
		return ui.ClassData{}, nil, err
	}
	return ui.ClassData{}, nil, nil
}

func (b *stubBackend) GetClassWindowed(event.Context, string, string, geom.Rect) (ui.ClassData, *spec.Customization, error) {
	return b.GetClass(event.Context{}, "", "")
}

func (b *stubBackend) GetValue(event.Context, catalog.OID) (geodb.Instance, *spec.Customization, error) {
	if err := b.check(); err != nil {
		return geodb.Instance{}, nil, err
	}
	return geodb.Instance{OID: 1}, nil, nil
}

func (b *stubBackend) SelectWhere(event.Context, string, string, []geodb.Filter) ([]geodb.Instance, error) {
	if err := b.check(); err != nil {
		return nil, err
	}
	return nil, nil
}

func (b *stubBackend) CallMethod(catalog.OID, string, ...catalog.Value) (catalog.Value, error) {
	if err := b.check(); err != nil {
		return catalog.Value{}, err
	}
	return catalog.TextVal(b.tag), nil
}

// stubServer serves a stubBackend over per-dial pipes; wrap, when set,
// intercepts each new server-side conn (faultnet injection).
type stubServer struct {
	t    *testing.T
	b    *stubBackend
	srv  *server.Server
	mu   sync.Mutex
	wrap func(net.Conn) net.Conn
}

func newStubServer(t *testing.T, tag string) *stubServer {
	s := &stubServer{t: t, b: &stubBackend{tag: tag}}
	s.srv = server.New(s.b)
	t.Cleanup(func() { s.srv.Close() })
	return s
}

func (s *stubServer) endpoint() Endpoint {
	return Endpoint{Addr: s.b.tag, Dial: func() (net.Conn, error) {
		cli, srv := net.Pipe()
		s.mu.Lock()
		wrap := s.wrap
		s.mu.Unlock()
		var conn net.Conn = srv
		if wrap != nil {
			conn = wrap(srv)
		}
		//vet:ignore testleak -- ServeConn exits when the test closes the client end of the pipe
		go s.srv.ServeConn(conn)
		return cli, nil
	}}
}

func (s *stubServer) setWrap(w func(net.Conn) net.Conn) {
	s.mu.Lock()
	s.wrap = w
	s.mu.Unlock()
}

func topoWorld(t *testing.T, replicas int, opts TopologyOptions) (*Topology, *stubServer, []*stubServer) {
	t.Helper()
	prim := newStubServer(t, "primary")
	var reps []*stubServer
	var eps []Endpoint
	for i := 0; i < replicas; i++ {
		r := newStubServer(t, "replica"+string(rune('A'+i)))
		reps = append(reps, r)
		eps = append(eps, r.endpoint())
	}
	topo := NewTopology(prim.endpoint(), eps, opts)
	t.Cleanup(func() { topo.Close() })
	return topo, prim, reps
}

// TestTopologySpreadsReadsAndPinsMutations: reads rotate over primary and
// replicas; call_method lands only on the primary.
func TestTopologySpreadsReadsAndPinsMutations(t *testing.T) {
	topo, prim, reps := topoWorld(t, 2, TopologyOptions{})
	for i := 0; i < 30; i++ {
		if _, _, err := topo.GetSchema(event.Context{}, "net"); err != nil {
			t.Fatal(err)
		}
	}
	if prim.b.calls.Load() == 0 || reps[0].b.calls.Load() == 0 || reps[1].b.calls.Load() == 0 {
		t.Fatalf("reads not spread: primary=%d repA=%d repB=%d",
			prim.b.calls.Load(), reps[0].b.calls.Load(), reps[1].b.calls.Load())
	}

	before := [2]int64{reps[0].b.calls.Load(), reps[1].b.calls.Load()}
	for i := 0; i < 6; i++ {
		if v, err := topo.CallMethod(1, "m"); err != nil || v.Text != "primary" {
			t.Fatalf("call_method answered by %q (%v), want primary", v.Text, err)
		}
	}
	if reps[0].b.calls.Load() != before[0] || reps[1].b.calls.Load() != before[1] {
		t.Fatal("a mutation reached a replica")
	}
}

// TestTopologyEvictsUnavailableReplicaAndRejoins: a replica answering the
// unavailable sentinel is evicted on first contact, reads keep succeeding
// on the rest, and the health prober re-admits it once it recovers.
func TestTopologyEvictsUnavailableReplicaAndRejoins(t *testing.T) {
	topo, _, reps := topoWorld(t, 2, TopologyOptions{HealthEvery: 20 * time.Millisecond})
	reps[0].b.fail.Store(true)

	for i := 0; i < 12; i++ {
		if _, _, err := topo.GetSchema(event.Context{}, "net"); err != nil {
			t.Fatalf("read %d failed during eviction: %v", i, err)
		}
	}
	if topo.Healthy() != 1 {
		t.Fatalf("%d healthy replicas after evicting one of two", topo.Healthy())
	}

	reps[0].b.fail.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for topo.Healthy() != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if topo.Healthy() != 2 {
		t.Fatal("recovered replica never rejoined the rotation")
	}
}

// TestTopologyAllReplicasDownReadsFromPrimary: with every replica evicted,
// every read lands on the primary and still succeeds.
func TestTopologyAllReplicasDownReadsFromPrimary(t *testing.T) {
	topo, prim, reps := topoWorld(t, 2, TopologyOptions{HealthEvery: time.Hour})
	reps[0].b.fail.Store(true)
	reps[1].b.fail.Store(true)
	for i := 0; i < 10; i++ {
		info, _, err := topo.GetSchema(event.Context{}, "net")
		if err != nil {
			t.Fatalf("read %d failed with all replicas down: %v", i, err)
		}
		if info.Name != "primary" {
			t.Fatalf("read served by %q with all replicas down", info.Name)
		}
	}
	if topo.Healthy() != 0 {
		t.Fatalf("%d healthy replicas, want 0", topo.Healthy())
	}
	if prim.b.calls.Load() < 10 {
		t.Fatalf("primary served %d calls, want all reads", prim.b.calls.Load())
	}
}

// TestTopologyStalledReplicaPoisonedAndEvicted: the one-way stall fault — a
// replica whose responses freeze mid-air (conn open, bytes stopped) — must
// trip the client's request timeout, poison that connection, evict the
// replica, and leave reads flowing through the survivors. Unfreezing lets
// the health probe re-admit it.
func TestTopologyStalledReplicaPoisonedAndEvicted(t *testing.T) {
	topo, _, reps := topoWorld(t, 1, TopologyOptions{
		Client:      Options{Timeout: 100 * time.Millisecond},
		HealthEvery: 20 * time.Millisecond,
	})

	// Every conn to the replica comes up with its write side (the response
	// path) frozen.
	var mu sync.Mutex
	var stalled []*faultnet.Conn
	reps[0].setWrap(func(c net.Conn) net.Conn {
		fc := faultnet.Wrap(c, faultnet.Options{})
		fc.StallWrites(true)
		mu.Lock()
		stalled = append(stalled, fc)
		mu.Unlock()
		return fc
	})

	for i := 0; i < 8; i++ {
		if _, _, err := topo.GetSchema(event.Context{}, "net"); err != nil {
			t.Fatalf("read %d failed during stall failover: %v", i, err)
		}
	}
	if topo.Healthy() != 0 {
		t.Fatal("stalled replica still in the read rotation")
	}

	// Thaw: new conns are clean, parked writers are released.
	reps[0].setWrap(nil)
	mu.Lock()
	for _, fc := range stalled {
		fc.StallWrites(false)
	}
	mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for topo.Healthy() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if topo.Healthy() != 1 {
		t.Fatal("thawed replica never rejoined the rotation")
	}
}
