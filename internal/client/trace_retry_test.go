// Tests for the client half of the tracing layer: a retried idempotent
// request stays ONE trace (the operation span keeps its identity across
// attempts) while every attempt gets its own span, and the per-attempt wire
// context restamps so the server parents under the live attempt.
package client

import (
	"net"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/server"
)

// TestRetryKeepsOneTraceNewAttemptNewSpan drops the first connection
// mid-frame; the retried GetSchema must produce a single client operation
// span (one trace ID) with two attempt children — the first errored, the
// second clean — all in the same trace.
func TestRetryKeepsOneTraceNewAttemptNewSpan(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	defer srv.Close()

	dials := 0
	dial := func() (net.Conn, error) {
		srvConn, cliConn := net.Pipe()
		go srv.ServeConn(srvConn)
		dials++
		if dials == 1 {
			return faultnet.Wrap(cliConn, faultnet.Options{Seed: 11, DropAfterBytes: 10}), nil
		}
		return cliConn, nil
	}
	cli := New(Options{Dial: dial, Retry: testRetry, Seed: 7})
	defer cli.Close()
	rec := obs.NewSpanRecorder(32)
	cli.Tracer().Attach(rec)

	if _, _, err := cli.GetSchema(event.Context{User: "maria"}, "phone_net"); err != nil {
		t.Fatalf("drop not recovered: %v", err)
	}
	if dials != 2 {
		t.Fatalf("dials = %d, want 2", dials)
	}

	var op obs.Span
	var attempts []obs.Span
	for _, sp := range rec.Spans() {
		switch sp.Name {
		case "client.get_schema":
			op = sp
		case "client.attempt":
			attempts = append(attempts, sp)
		}
	}
	if op.ID == 0 {
		t.Fatalf("no operation span recorded: %+v", rec.Spans())
	}
	if len(attempts) != 2 {
		t.Fatalf("attempt spans = %d, want 2 (one per dial)", len(attempts))
	}
	if attempts[0].ID == attempts[1].ID {
		t.Error("retried attempt reused the first attempt's span ID")
	}
	for i, a := range attempts {
		if a.Trace != op.Trace {
			t.Errorf("attempt %d trace = %x, want the operation's %x (retry must keep one trace)", i+1, a.Trace, op.Trace)
		}
		if a.Parent != op.ID {
			t.Errorf("attempt %d parent = %x, want the operation span %x", i+1, a.Parent, op.ID)
		}
	}
	if attempts[0].Error == "" {
		t.Error("first (dropped) attempt should carry its transport error")
	}
	if attempts[1].Error != "" {
		t.Errorf("second attempt errored: %s", attempts[1].Error)
	}
}

// TestRetryRestampsWireContext: the server must see a different span parent
// on each attempt (the live attempt's span), while the trace ID stays fixed
// — verified from the server side through a shared tail sampler.
func TestRetryRestampsWireContext(t *testing.T) {
	backend, _, _ := serverWorld(t)
	srv := server.New(backend)
	defer srv.Close()
	ts := obs.NewTailSampler(obs.TailSamplerOptions{SlowestN: 8, HeadRate: 0})
	srv.Tracer = obs.NewTracer()
	srv.Tracer.AttachSink(ts)

	dials := 0
	dial := func() (net.Conn, error) {
		srvConn, cliConn := net.Pipe()
		dials++
		if dials == 1 {
			// Fault the SERVER side: the first request arrives whole and is
			// handled (and spanned), but the response dies mid-frame — the
			// client must retry on a fresh conn, restamping its context.
			go srv.ServeConn(faultnet.Wrap(srvConn, faultnet.Options{Seed: 3, DropAfterBytes: 20}))
		} else {
			go srv.ServeConn(srvConn)
		}
		return cliConn, nil
	}
	cli := New(Options{Dial: dial, Timeout: time.Second, Retry: testRetry, Seed: 5})
	defer cli.Close()
	rec := obs.NewSpanRecorder(32)
	cli.Tracer().Attach(rec)

	if _, _, err := cli.GetSchema(event.Context{}, "phone_net"); err != nil {
		t.Fatalf("drop not recovered: %v", err)
	}

	var opTrace uint64
	attemptIDs := map[uint64]bool{}
	for _, sp := range rec.Spans() {
		if sp.Name == "client.get_schema" {
			opTrace = sp.Trace
		}
		if sp.Name == "client.attempt" {
			attemptIDs[sp.ID] = true
		}
	}
	if opTrace == 0 || len(attemptIDs) < 2 {
		t.Fatalf("client spans incomplete: trace %x, %d attempts", opTrace, len(attemptIDs))
	}

	// Server request spans land in the shared sampler keyed by the SAME
	// trace, each parented on a DIFFERENT attempt span.
	deadline := time.Now().Add(2 * time.Second)
	var serverSpans []obs.Span
	for {
		if td, ok := ts.Get(opTrace); ok {
			serverSpans = serverSpans[:0]
			for _, sp := range td.Spans {
				if sp.Name == "server."+string(proto.OpGetSchema) {
					serverSpans = append(serverSpans, sp)
				}
			}
			if len(serverSpans) >= 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server handled %d spans for trace %x, want 2 (one per attempt)", len(serverSpans), opTrace)
		}
		time.Sleep(time.Millisecond)
	}
	parents := map[uint64]bool{}
	for _, sp := range serverSpans {
		if !attemptIDs[sp.Parent] {
			t.Errorf("server span parent %x is not a client attempt span", sp.Parent)
		}
		parents[sp.Parent] = true
	}
	if len(parents) < 2 {
		t.Error("both server spans parented on the same attempt: wire context was not restamped per attempt")
	}
}
