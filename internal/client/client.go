// Package client is the UI-side binding of the weak-integration protocol:
// it implements ui.Backend over a connection to a server, so the same
// dispatcher and generic interface builder run unchanged whether the DBMS is
// in-process (strong integration) or remote (weak integration) — exactly the
// adaptability §3.5 argues for.
//
// The transport is fault-tolerant and pipelined. Concurrent callers share
// one connection: each request carries a unique proto.Request.ID, a single
// reader goroutine demultiplexes responses back to their waiters, and writes
// are serialized per frame — so N sessions multiplexed over one link wait on
// the DBMS, not on each other (DESIGN.md §10). Requests carry optional
// deadlines, a RetryPolicy re-issues idempotent retrieval verbs with
// exponential backoff and jitter, a dial function lets the client reconnect
// so it survives server restarts, and any framing or ID-mismatch error
// poisons the connection — a desynchronized stream is closed, every
// in-flight request on it fails fast, and it is never reused. Retries,
// reconnects, timeouts and poisonings are counted in the internal/obs
// registry and therefore appear in the STATS verb snapshot.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/geodb"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/spec"
	"repro/internal/ui"
)

// Client-side fault-tolerance accounting, resolved once.
var (
	mRetries    = obs.Default().Counter("gis_client_retries_total")
	mReconnects = obs.Default().Counter("gis_client_reconnects_total")
	mTimeouts   = obs.Default().Counter("gis_client_request_timeouts_total")
	mPoisoned   = obs.Default().Counter("gis_client_conn_poisoned_total")
)

// ErrClosed is returned for requests on a closed client.
var ErrClosed = errors.New("client: closed")

// errNotConnected reports a client whose connection is gone and that has no
// dial function to get a new one.
var errNotConnected = errors.New("client: not connected and no dial function")

// RetryPolicy shapes transparent retries of idempotent retrieval verbs.
// Only transport-level failures (dial errors, timeouts, framing or ID
// desynchronization) are retried; an error the server itself returned
// (proto.ErrRemote) is an application answer and is surfaced immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, including the
	// first. 0 or 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms).
	// Each further retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized (0..1,
	// default 0.5): delay' = delay − uniform(0, Jitter·delay). Jitter
	// de-synchronizes herds of clients retrying after a server restart.
	Jitter float64
}

// backoff returns the delay before retry number n (1-based).
func (p RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	d := base << uint(n-1)
	if d > maxd || d <= 0 {
		d = maxd
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 && jitter <= 1 {
		d -= time.Duration(rng.Float64() * jitter * float64(d))
	}
	return d
}

// Options configures a fault-tolerant client.
type Options struct {
	// Dial produces a new connection; when set, the client reconnects
	// through it after any transport failure, surviving server restarts.
	// Nil means the client is pinned to one fixed connection.
	Dial func() (net.Conn, error)
	// Timeout bounds one request round trip (write + wait for the matching
	// response). Zero disables. A timed-out connection is poisoned: the
	// late response would desynchronize the demultiplexer's view of the
	// stream, so the whole session is discarded.
	Timeout time.Duration
	// Retry shapes transparent retries of idempotent verbs.
	Retry RetryPolicy
	// Seed seeds the backoff-jitter PRNG, for deterministic tests. Zero
	// uses a time-derived seed.
	Seed int64
}

// result is what a waiter receives from the reader goroutine.
type result struct {
	resp proto.Response
	err  error
}

// session is one live connection plus its demultiplexer state. A session is
// created on (re)connect and discarded wholesale on any transport failure;
// the Client above it survives and dials a fresh session.
type session struct {
	conn net.Conn
	// writeMu serializes frame writes; requests from concurrent callers
	// interleave at frame granularity, which is all the framing needs.
	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan result // in-flight requests by ID
	closed  bool
	err     error // the teardown cause, served to late arrivals
}

// Client speaks the protocol over one connection, pipelined: concurrent
// callers issue requests without queueing behind each other's round trips.
// All methods are safe for concurrent use.
type Client struct {
	mu     sync.Mutex
	sess   *session
	conn   net.Conn // pre-established conn not yet wrapped in a session
	opts   Options
	dialed bool // a first connection existed; later dials are reconnects
	closed bool

	next atomic.Uint64 // request ID source, unique across sessions

	// tracer spans every round trip and each transport attempt inside it;
	// disabled (and free) until a sink is attached via Tracer().
	tracer obs.Tracer

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Tracer exposes the client's tracer so a span sink can be attached.
func (c *Client) Tracer() *obs.Tracer { return &c.tracer }

// Dial connects to a TCP server with no timeout and no retries — the
// plain §3.5 configuration. Use DialOptions for a fault-tolerant client.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to a TCP server and keeps its address as the
// reconnect target (unless Options.Dial overrides it). The initial dial is
// eager so a bad address fails fast.
func DialOptions(addr string, opts Options) (*Client, error) {
	if opts.Dial == nil {
		opts.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	c := New(opts)
	if _, err := c.ensureSession(); err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return c, nil
}

// New returns a client that dials lazily through opts.Dial on first use.
func New(opts Options) *Client {
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{opts: opts, rng: rand.New(rand.NewSource(seed))}
}

// NewClient wraps an established connection (e.g. one end of net.Pipe) with
// no timeout, no retries and no reconnect.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, rng: rand.New(rand.NewSource(1))}
}

// NewClientOptions wraps an established connection with fault-tolerance
// options; opts.Dial, when set, replaces the connection after a failure.
func NewClientOptions(conn net.Conn, opts Options) *Client {
	c := New(opts)
	c.conn = conn
	c.dialed = true
	return c
}

// Close closes the connection and fails any in-flight requests with
// ErrClosed; further requests fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	s := c.sess
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if s != nil {
		c.teardown(s, ErrClosed, false)
	}
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// ensureSession returns the live session, dialing a new connection and
// starting its reader when none exists.
func (c *Client) ensureSession() (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.sess != nil {
		return c.sess, nil
	}
	conn := c.conn
	c.conn = nil
	if conn == nil {
		if c.opts.Dial == nil {
			return nil, errNotConnected
		}
		var err error
		conn, err = c.opts.Dial()
		if err != nil {
			return nil, err
		}
		if c.dialed {
			mReconnects.Inc()
		}
	}
	c.dialed = true
	s := &session{conn: conn, pending: make(map[uint64]chan result)}
	c.sess = s
	go c.readLoop(s)
	return s, nil
}

// teardown retires a session: the connection is closed, every in-flight
// request fails fast with err, and the client forgets the session so the
// next request dials fresh. Idempotent — only the first caller wins, so a
// clean Close (poison=false) racing the reader never inflates the poison
// counter. poison marks streams whose position became untrustworthy
// (framing error, timeout, ID desync).
func (c *Client) teardown(s *session, err error, poison bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = err
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()

	_ = s.conn.Close()
	if poison {
		mPoisoned.Inc()
	}
	for _, ch := range pending {
		ch <- result{err: err}
	}
	c.mu.Lock()
	if c.sess == s {
		c.sess = nil
	}
	c.mu.Unlock()
}

// readLoop is the session's demultiplexer: it owns the read side of the
// connection, routing each response to the waiter registered under its ID.
// Any read failure or unmatched ID retires the whole session.
func (c *Client) readLoop(s *session) {
	for {
		var resp proto.Response
		if err := proto.ReadMessage(s.conn, &resp); err != nil {
			// If teardown already ran (Close, timeout, write failure) this
			// is the reader observing its own closed conn: a no-op.
			c.teardown(s, fmt.Errorf("client: connection lost: %w", err), true)
			return
		}
		s.mu.Lock()
		ch, ok := s.pending[resp.ID]
		if ok {
			delete(s.pending, resp.ID)
		}
		closed := s.closed
		s.mu.Unlock()
		if !ok {
			if closed {
				return // late response racing a concurrent teardown
			}
			// An ID we never sent (or already satisfied) proves the stream
			// is desynchronized: nothing read from it can be trusted.
			c.teardown(s, fmt.Errorf("client: response id %d matches no in-flight request", resp.ID), true)
			return
		}
		ch <- result{resp: resp}
	}
}

// retryable reports whether op is an idempotent retrieval verb that a retry
// may safely re-issue. call_method may run arbitrary database code, so it is
// never retried.
func retryable(op proto.Op) bool {
	switch op {
	case proto.OpConnect, proto.OpGetSchema, proto.OpGetClass,
		proto.OpGetValue, proto.OpSelectWhere, proto.OpStats, proto.OpTrace,
		proto.OpReplStatus:
		return true
	}
	return false
}

// transient reports whether err may heal on a fresh connection. Remote
// errors are application answers, not transport failures.
func transient(err error) bool {
	return !errors.Is(err, proto.ErrRemote) && !errors.Is(err, ErrClosed)
}

func (c *Client) roundTrip(req proto.Request) (_ proto.Response, rerr error) {
	// One span covers the whole logical request; each transport attempt gets
	// a child of its own, and the wire context is restamped per attempt — so
	// a retried request keeps one trace ID but every attempt is a distinct
	// span in the tree.
	sp := c.tracer.StartSpan("client."+string(req.Op), req.Ctx.Trace)
	defer func() { sp.SetError(rerr).Finish() }()
	attempts := 1
	if retryable(req.Op) && c.opts.Retry.MaxAttempts > 1 {
		attempts = c.opts.Retry.MaxAttempts
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			mRetries.Inc()
			c.rngMu.Lock()
			delay := c.opts.Retry.backoff(attempt-1, c.rng)
			c.rngMu.Unlock()
			time.Sleep(delay)
		}
		asp := sp.Child("client.attempt").Setf("attempt", "%d", attempt)
		if asp != nil {
			sc := asp.Context()
			req.Trace = &sc
		} else if req.Ctx.Trace.Valid() {
			// Tracing is off in this client but the caller has a trace (e.g.
			// a recording session over an untraced client): still propagate.
			sc := req.Ctx.Trace
			req.Trace = &sc
		}
		resp, err := c.attempt(&req)
		asp.SetError(err).Finish()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !transient(err) {
			return proto.Response{}, err
		}
	}
	return proto.Response{}, lastErr
}

// attempt performs one pipelined exchange: register a waiter under a fresh
// ID, write the frame, then block until the reader delivers the matching
// response (or the deadline/teardown fails it). Concurrent attempts share
// the session; only the frame write itself is serialized.
func (c *Client) attempt(req *proto.Request) (proto.Response, error) {
	s, err := c.ensureSession()
	if err != nil {
		return proto.Response{}, err
	}
	id := c.next.Add(1)
	req.ID = id
	ch := make(chan result, 1)
	s.mu.Lock()
	if s.closed {
		err := s.err
		s.mu.Unlock()
		return proto.Response{}, err
	}
	s.pending[id] = ch
	s.mu.Unlock()

	s.writeMu.Lock()
	if c.opts.Timeout > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(c.opts.Timeout))
	}
	werr := proto.WriteMessage(s.conn, *req)
	if werr == nil && c.opts.Timeout > 0 {
		s.conn.SetWriteDeadline(time.Time{})
	}
	s.writeMu.Unlock()
	if werr != nil {
		var ne net.Error
		if errors.As(werr, &ne) && ne.Timeout() {
			mTimeouts.Inc()
		}
		// A partial frame leaves the write side desynchronized for every
		// other in-flight request too: fail them all and start over.
		c.teardown(s, fmt.Errorf("client: write failed: %w", werr), true)
		return proto.Response{}, werr
	}

	var timeoutC <-chan time.Time
	if c.opts.Timeout > 0 {
		timer := time.NewTimer(c.opts.Timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return proto.Response{}, res.err
		}
		if res.resp.Err != "" {
			return proto.Response{}, fmt.Errorf("%w: %s", proto.ErrRemote, res.resp.Err)
		}
		return res.resp, nil
	case <-timeoutC:
		mTimeouts.Inc()
		terr := fmt.Errorf("client: request %d timed out after %v", id, c.opts.Timeout)
		// The response may still arrive later; reading past it is not an
		// option (it could pair with a future request), so poison.
		c.teardown(s, terr, true)
		return proto.Response{}, terr
	}
}

// Connect implements ui.Backend.
func (c *Client) Connect(ctx event.Context) error {
	_, err := c.roundTrip(proto.Request{Op: proto.OpConnect, Ctx: ctx})
	return err
}

// GetSchema implements ui.Backend.
func (c *Client) GetSchema(ctx event.Context, schema string) (geodb.SchemaInfo, *spec.Customization, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpGetSchema, Ctx: ctx, Schema: schema})
	if err != nil {
		return geodb.SchemaInfo{}, nil, err
	}
	if resp.Schema == nil {
		return geodb.SchemaInfo{}, nil, fmt.Errorf("%w: missing schema payload", proto.ErrRemote)
	}
	info := geodb.SchemaInfo{
		Name:    resp.Schema.Name,
		Classes: resp.Schema.Classes,
		Parents: resp.Schema.Parents,
	}
	return info, resp.Cust, nil
}

// GetClass implements ui.Backend.
func (c *Client) GetClass(ctx event.Context, schema, class string) (ui.ClassData, *spec.Customization, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpGetClass, Ctx: ctx, Schema: schema, Class: class})
	if err != nil {
		return ui.ClassData{}, nil, err
	}
	return c.decodeClass(resp)
}

func (c *Client) decodeClass(resp proto.Response) (ui.ClassData, *spec.Customization, error) {
	if resp.Class == nil {
		return ui.ClassData{}, nil, fmt.Errorf("%w: missing class payload", proto.ErrRemote)
	}
	data := ui.ClassData{
		Info: geodb.ClassInfo{
			Schema:       resp.Class.Schema,
			Class:        resp.Class.Class,
			Attrs:        resp.Class.Attrs,
			OIDs:         resp.Class.OIDs,
			GeometryAttr: resp.Class.GeometryAttr,
		},
	}
	for _, wi := range resp.Class.Instances {
		in, err := proto.DecodeInstance(wi)
		if err != nil {
			return ui.ClassData{}, nil, err
		}
		data.Instances = append(data.Instances, in)
	}
	return data, resp.Cust, nil
}

// GetClassWindowed implements ui.Backend: the viewport crosses the wire as
// the WKT of its rectangle.
func (c *Client) GetClassWindowed(ctx event.Context, schema, class string, window geom.Rect) (ui.ClassData, *spec.Customization, error) {
	resp, err := c.roundTrip(proto.Request{
		Op: proto.OpGetClass, Ctx: ctx, Schema: schema, Class: class, Window: window.WKT()})
	if err != nil {
		return ui.ClassData{}, nil, err
	}
	return c.decodeClass(resp)
}

// GetValue implements ui.Backend.
func (c *Client) GetValue(ctx event.Context, oid catalog.OID) (geodb.Instance, *spec.Customization, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpGetValue, Ctx: ctx, OID: oid})
	if err != nil {
		return geodb.Instance{}, nil, err
	}
	if resp.Instance == nil {
		return geodb.Instance{}, nil, fmt.Errorf("%w: missing instance payload", proto.ErrRemote)
	}
	in, err := proto.DecodeInstance(*resp.Instance)
	if err != nil {
		return geodb.Instance{}, nil, err
	}
	return in, resp.Cust, nil
}

// SelectWhere implements ui.Backend.
func (c *Client) SelectWhere(ctx event.Context, schema, class string, filters []geodb.Filter) ([]geodb.Instance, error) {
	wf, err := proto.EncodeFilters(filters)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(proto.Request{
		Op: proto.OpSelectWhere, Ctx: ctx, Schema: schema, Class: class, Filters: wf})
	if err != nil {
		return nil, err
	}
	out := make([]geodb.Instance, 0, len(resp.Instances))
	for _, wi := range resp.Instances {
		in, err := proto.DecodeInstance(wi)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// Stats fetches a snapshot of the server's metrics registry (the STATS
// observability verb).
func (c *Client) Stats() (obs.Snapshot, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpStats})
	if err != nil {
		return obs.Snapshot{}, err
	}
	if resp.Stats == nil {
		return obs.Snapshot{}, fmt.Errorf("%w: missing stats payload", proto.ErrRemote)
	}
	return *resp.Stats, nil
}

// CallMethod implements ui.Backend (and builder.MethodCaller). Methods may
// run arbitrary database code, so CallMethod is never retried: a transport
// failure surfaces to the caller, who knows whether re-invoking is safe.
func (c *Client) CallMethod(oid catalog.OID, method string, args ...catalog.Value) (catalog.Value, error) {
	wargs, err := proto.EncodeValues(args)
	if err != nil {
		return catalog.Value{}, err
	}
	resp, err := c.roundTrip(proto.Request{Op: proto.OpCallMethod, OID: oid, Method: method, Args: wargs})
	if err != nil {
		return catalog.Value{}, err
	}
	if resp.Value == nil {
		return catalog.Value{}, fmt.Errorf("%w: missing value payload", proto.ErrRemote)
	}
	return proto.DecodeValue(*resp.Value)
}

// ScenarioInsert implements ui.Mutator over the scenario_insert verb, so a
// remote session commits simulation workspaces through the server's normal
// rule-guarded, WAL-durable mutation path. Mutations are never retried: a
// transport failure surfaces to CommitScenario, whose workspace-consuming
// replay already handles resumption.
func (c *Client) ScenarioInsert(ctx event.Context, schema, class string, values []catalog.Value) (catalog.OID, error) {
	wvals, err := proto.EncodeValues(values)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(proto.Request{
		Op: proto.OpScenarioInsert, Ctx: ctx, Schema: schema, Class: class, Args: wvals})
	if err != nil {
		return 0, err
	}
	return resp.OID, nil
}

// ScenarioUpdate implements ui.Mutator over the scenario_update verb.
func (c *Client) ScenarioUpdate(ctx event.Context, oid catalog.OID, values []catalog.Value) error {
	wvals, err := proto.EncodeValues(values)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(proto.Request{Op: proto.OpScenarioUpdate, Ctx: ctx, OID: oid, Args: wvals})
	return err
}

// ScenarioDelete implements ui.Mutator over the scenario_delete verb.
func (c *Client) ScenarioDelete(ctx event.Context, oid catalog.OID) error {
	_, err := c.roundTrip(proto.Request{Op: proto.OpScenarioDelete, Ctx: ctx, OID: oid})
	return err
}

// CommitTxn implements ui.TxnMutator over the txn verb: the batch crosses
// the wire as one request and commits server-side as one geodb transaction
// (one WAL group, one shared group-commit fsync). Like the other mutation
// verbs it is never retried — a transport failure leaves the outcome
// unknown, and only the caller can decide whether re-issuing is safe.
func (c *Client) CommitTxn(ctx event.Context, ops []ui.TxnOp) ([]catalog.OID, error) {
	wire := make([]proto.TxnOp, len(ops))
	for i, op := range ops {
		values, err := proto.EncodeValues(op.Values)
		if err != nil {
			return nil, fmt.Errorf("client: txn op %d: %w", i, err)
		}
		w := proto.TxnOp{Schema: op.Schema, Class: op.Class, OID: op.OID, Values: values}
		switch op.Kind {
		case ui.TxnInsert:
			w.Kind = proto.TxnInsert
		case ui.TxnUpdate:
			w.Kind = proto.TxnUpdate
		case ui.TxnDelete:
			w.Kind = proto.TxnDelete
		default:
			return nil, fmt.Errorf("client: txn op %d: unknown kind %s", i, op.Kind)
		}
		wire[i] = w
	}
	resp, err := c.roundTrip(proto.Request{Op: proto.OpTxn, Ctx: ctx, TxnOps: wire})
	if err != nil {
		return nil, err
	}
	if len(resp.OIDs) != len(ops) {
		return nil, fmt.Errorf("%w: txn answered %d oids for %d ops", proto.ErrRemote, len(resp.OIDs), len(ops))
	}
	return resp.OIDs, nil
}

// ReplStatus fetches the server's replication status (the repl_status
// verb): role, applied/durable LSNs, lag and health. A server that does not
// replicate answers with a remote error.
func (c *Client) ReplStatus() (proto.ReplStatus, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpReplStatus})
	if err != nil {
		return proto.ReplStatus{}, err
	}
	if resp.Repl == nil {
		return proto.ReplStatus{}, fmt.Errorf("%w: missing repl payload", proto.ErrRemote)
	}
	return *resp.Repl, nil
}

// Traces fetches every trace retained by the server's tail sampler (the
// TRACE observability verb).
func (c *Client) Traces() ([]obs.TraceData, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpTrace})
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// Trace fetches one retained trace by ID; a trace the sampler did not
// retain (or has since evicted) is a remote error.
func (c *Client) Trace(trace uint64) (obs.TraceData, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpTrace, TraceID: trace})
	if err != nil {
		return obs.TraceData{}, err
	}
	if len(resp.Traces) == 0 {
		return obs.TraceData{}, fmt.Errorf("%w: trace %s not retained", proto.ErrRemote, obs.IDString(trace))
	}
	return resp.Traces[0], nil
}
