// Package client is the UI-side binding of the weak-integration protocol:
// it implements ui.Backend over a connection to a server, so the same
// dispatcher and generic interface builder run unchanged whether the DBMS is
// in-process (strong integration) or remote (weak integration) — exactly the
// adaptability §3.5 argues for.
package client

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/geodb"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/spec"
	"repro/internal/ui"
)

// Client speaks the protocol over one connection. Requests are serialized
// by a mutex: a UI session issues one interaction at a time, and sharing a
// client across sessions just queues them.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	next uint64
}

// Dial connects to a TCP server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one end of net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req proto.Request) (proto.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	if err := proto.WriteMessage(c.conn, req); err != nil {
		return proto.Response{}, err
	}
	var resp proto.Response
	if err := proto.ReadMessage(c.conn, &resp); err != nil {
		return proto.Response{}, err
	}
	if resp.ID != req.ID {
		return proto.Response{}, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Err != "" {
		return proto.Response{}, fmt.Errorf("%w: %s", proto.ErrRemote, resp.Err)
	}
	return resp, nil
}

// Connect implements ui.Backend.
func (c *Client) Connect(ctx event.Context) error {
	_, err := c.roundTrip(proto.Request{Op: proto.OpConnect, Ctx: ctx})
	return err
}

// GetSchema implements ui.Backend.
func (c *Client) GetSchema(ctx event.Context, schema string) (geodb.SchemaInfo, *spec.Customization, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpGetSchema, Ctx: ctx, Schema: schema})
	if err != nil {
		return geodb.SchemaInfo{}, nil, err
	}
	if resp.Schema == nil {
		return geodb.SchemaInfo{}, nil, fmt.Errorf("%w: missing schema payload", proto.ErrRemote)
	}
	info := geodb.SchemaInfo{
		Name:    resp.Schema.Name,
		Classes: resp.Schema.Classes,
		Parents: resp.Schema.Parents,
	}
	return info, resp.Cust, nil
}

// GetClass implements ui.Backend.
func (c *Client) GetClass(ctx event.Context, schema, class string) (ui.ClassData, *spec.Customization, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpGetClass, Ctx: ctx, Schema: schema, Class: class})
	if err != nil {
		return ui.ClassData{}, nil, err
	}
	return c.decodeClass(resp)
}

func (c *Client) decodeClass(resp proto.Response) (ui.ClassData, *spec.Customization, error) {
	if resp.Class == nil {
		return ui.ClassData{}, nil, fmt.Errorf("%w: missing class payload", proto.ErrRemote)
	}
	data := ui.ClassData{
		Info: geodb.ClassInfo{
			Schema:       resp.Class.Schema,
			Class:        resp.Class.Class,
			Attrs:        resp.Class.Attrs,
			OIDs:         resp.Class.OIDs,
			GeometryAttr: resp.Class.GeometryAttr,
		},
	}
	for _, wi := range resp.Class.Instances {
		in, err := proto.DecodeInstance(wi)
		if err != nil {
			return ui.ClassData{}, nil, err
		}
		data.Instances = append(data.Instances, in)
	}
	return data, resp.Cust, nil
}

// GetClassWindowed implements ui.Backend: the viewport crosses the wire as
// the WKT of its rectangle.
func (c *Client) GetClassWindowed(ctx event.Context, schema, class string, window geom.Rect) (ui.ClassData, *spec.Customization, error) {
	resp, err := c.roundTrip(proto.Request{
		Op: proto.OpGetClass, Ctx: ctx, Schema: schema, Class: class, Window: window.WKT()})
	if err != nil {
		return ui.ClassData{}, nil, err
	}
	return c.decodeClass(resp)
}

// GetValue implements ui.Backend.
func (c *Client) GetValue(ctx event.Context, oid catalog.OID) (geodb.Instance, *spec.Customization, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpGetValue, Ctx: ctx, OID: oid})
	if err != nil {
		return geodb.Instance{}, nil, err
	}
	if resp.Instance == nil {
		return geodb.Instance{}, nil, fmt.Errorf("%w: missing instance payload", proto.ErrRemote)
	}
	in, err := proto.DecodeInstance(*resp.Instance)
	if err != nil {
		return geodb.Instance{}, nil, err
	}
	return in, resp.Cust, nil
}

// SelectWhere implements ui.Backend.
func (c *Client) SelectWhere(ctx event.Context, schema, class string, filters []geodb.Filter) ([]geodb.Instance, error) {
	wf, err := proto.EncodeFilters(filters)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(proto.Request{
		Op: proto.OpSelectWhere, Ctx: ctx, Schema: schema, Class: class, Filters: wf})
	if err != nil {
		return nil, err
	}
	out := make([]geodb.Instance, 0, len(resp.Instances))
	for _, wi := range resp.Instances {
		in, err := proto.DecodeInstance(wi)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// Stats fetches a snapshot of the server's metrics registry (the STATS
// observability verb).
func (c *Client) Stats() (obs.Snapshot, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpStats})
	if err != nil {
		return obs.Snapshot{}, err
	}
	if resp.Stats == nil {
		return obs.Snapshot{}, fmt.Errorf("%w: missing stats payload", proto.ErrRemote)
	}
	return *resp.Stats, nil
}

// CallMethod implements ui.Backend (and builder.MethodCaller).
func (c *Client) CallMethod(oid catalog.OID, method string, args ...catalog.Value) (catalog.Value, error) {
	wargs, err := proto.EncodeValues(args)
	if err != nil {
		return catalog.Value{}, err
	}
	resp, err := c.roundTrip(proto.Request{Op: proto.OpCallMethod, OID: oid, Method: method, Args: wargs})
	if err != nil {
		return catalog.Value{}, err
	}
	if resp.Value == nil {
		return catalog.Value{}, fmt.Errorf("%w: missing value payload", proto.ErrRemote)
	}
	return proto.DecodeValue(*resp.Value)
}
