// Tests for declared condition expressions on rules (Rule.Cond): dispatch
// enforcement, decision-cache interaction (static conds stay cacheable,
// oid/name conds do not), and the analyzable surface CheckSet exposes.
package active

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/spec"
)

func TestAddRuleRejectsBadCond(t *testing.T) {
	en := NewEngine()
	r := custRule("bad", event.Context{User: "u"}, spec.DisplayDefault)
	r.Cond = `zoom >`
	if err := en.AddRule(r); !errors.Is(err, ErrBadRule) {
		t.Fatalf("bad cond accepted: %v", err)
	}
}

func TestCondEnforcedAtDispatch(t *testing.T) {
	en := NewEngine()
	r := custRule("zoomed", event.Context{Application: "pole_manager"}, spec.DisplayHierarchy)
	r.Cond = `zoom > 10`
	if err := en.AddRule(r); err != nil {
		t.Fatal(err)
	}
	probe := func(zoom string) bool {
		ctx := event.Context{Application: "pole_manager"}
		if zoom != "" {
			ctx.Extra = map[string]string{"zoom": zoom}
		}
		e := schemaProbe(ctx)
		if err := en.HandleEvent(e); err != nil {
			t.Fatal(err)
		}
		_, ok := en.TakeCustomization(e)
		return ok
	}
	if !probe("12") {
		t.Error("zoom=12 should satisfy the condition")
	}
	if probe("5") {
		t.Error("zoom=5 should fail the condition")
	}
	if probe("") {
		t.Error("absent zoom should fail the condition")
	}
}

// TestStaticCondStaysCacheable: a condition over cache-key dimensions is
// folded into the memoized plan — repeat dispatches hit the cache and still
// honor it.
func TestStaticCondStaysCacheable(t *testing.T) {
	en := NewEngine()
	r := custRule("annOnly", event.Context{Application: "pole_manager"}, spec.DisplayNull)
	r.Cond = `user == "ann"`
	if err := en.AddRule(r); err != nil {
		t.Fatal(err)
	}
	ann := schemaProbe(event.Context{User: "ann", Application: "pole_manager"})
	bob := schemaProbe(event.Context{User: "bob", Application: "pole_manager"})
	for i := 0; i < 3; i++ {
		if _, ok := dispatchAndTake(t, en, ann); !ok {
			t.Fatalf("dispatch %d: ann should match", i)
		}
		if _, ok := dispatchAndTake(t, en, bob); ok {
			t.Fatalf("dispatch %d: bob should not match", i)
		}
	}
	cs := en.CacheStats()
	if cs.Uncacheable != 0 {
		t.Fatalf("static cond should not bypass the cache: %+v", cs)
	}
	if cs.Hits != 4 || cs.Misses != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 4/2", cs.Hits, cs.Misses)
	}
}

// TestDynamicCondBypassesCache: a condition reading oid is not a function
// of the cache key, so matching shapes must take the uncacheable path —
// and the condition must still be enforced per event.
func TestDynamicCondBypassesCache(t *testing.T) {
	en := NewEngine()
	r := custRule("bigOids", event.Context{Application: "pole_manager"}, spec.DisplayDefault)
	r.Cond = `oid >= 100`
	r.On = event.GetValue
	if err := en.AddRule(r); err != nil {
		t.Fatal(err)
	}
	probe := func(oid catalog.OID) bool {
		e := event.Event{
			Kind: event.GetValue, Schema: "phone_net", OID: oid,
			Ctx: event.Context{Application: "pole_manager"},
		}
		if err := en.HandleEvent(e); err != nil {
			t.Fatal(err)
		}
		_, ok := en.TakeCustomization(e)
		return ok
	}
	// Same event shape, different OIDs: a cached plan would get this wrong.
	if !probe(150) {
		t.Error("oid=150 should match")
	}
	if probe(50) {
		t.Error("oid=50 should not match")
	}
	if !probe(100) {
		t.Error("oid=100 should match")
	}
	cs := en.CacheStats()
	if cs.Uncacheable != 3 || cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("dynamic cond must bypass the cache: %+v", cs)
	}
}

func TestCondVisibleToCheckSet(t *testing.T) {
	en := NewEngine()
	a := custRule("a", event.Context{Application: "p"}, spec.DisplayDefault)
	a.Cond = `zoom > 10`
	b := custRule("b", event.Context{Application: "p"}, spec.DisplayNull)
	b.Cond = `zoom <= 10`
	if err := en.AddRule(a); err != nil {
		t.Fatal(err)
	}
	if err := en.AddRule(b); err != nil {
		t.Fatal(err)
	}
	// Shape-identical rules, but the conditions are provably disjoint: the
	// analyzer must stay silent.
	if fs := en.CheckSet(); len(fs) != 0 {
		t.Fatalf("disjoint conds flagged: %+v", fs)
	}
}
