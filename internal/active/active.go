// Package active implements the active database mechanism of §3.3: an ECA
// (Event-Condition-Action) rule engine that intercepts the database events
// emitted by the geographic DBMS and, among its rule families, supports the
// paper's new family — interface customization rules.
//
// Rule semantics follow the paper precisely:
//
//   - A rule is "On Event Ei If Condition Cj Then Apply Customization CTn".
//   - Conditions do not check a database state but the user's working
//     environment: a context pattern <user, category, application>.
//   - Several customization rules may match one event (one per context);
//     only the single most specific rule executes. Specificity is the
//     context pattern's restrictiveness (user > category > application),
//     with an explicit Priority field as tiebreak.
//   - Customization rule actions are deliberately limited to "getting a
//     customization for an interface object", which is what makes the rule
//     family confluent (no cascades, no conflicts).
//   - Other families — constraint rules and generic reaction rules — run
//     for every match, may veto mutations (by returning an error from a
//     Pre* event) and may cascade by emitting follow-up events, bounded by
//     a cycle-guarding depth limit.
//
// The dispatch hot path is concurrent and cached (DESIGN.md §10): rule
// buckets are kept pre-sorted at install time so no per-event sort runs, the
// candidate scratch is pooled, and the winning decision for an event shape is
// memoized behind an epoch counter bumped by every rule mutation. Rules with
// a dynamic When predicate mark their event shape uncacheable — correctness
// over speed — and the SelectAll ablation bypasses the cache entirely.
package active

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/ruleanalysis"
	"repro/internal/spec"
)

// Registry handles for the engine's global activity metrics (§ Observability
// in DESIGN.md). Per-engine counts stay on the engine (Stats); these
// aggregate across engines and feed the STATS verb and --metrics endpoint.
var (
	mEvents     = obs.Default().Counter("gis_active_events_total")
	mEvaluated  = obs.Default().Counter("gis_active_rules_evaluated_total")
	mFired      = obs.Default().Counter("gis_active_rules_fired_total")
	mSelected   = obs.Default().Counter("gis_active_customizations_selected_total")
	mSuppressed = obs.Default().Counter("gis_active_customizations_suppressed_total")
	// mFireSeconds times individual rule-action executions.
	mFireSeconds = obs.Default().Histogram("gis_active_rule_fire_seconds", obs.LatencyBuckets)
	// mSpecificity distributes the specificity of winning customization
	// rules (bounds cover Context.Specificity()*8 + scope bits).
	mSpecificity = obs.Default().Histogram("gis_active_selected_specificity",
		[]float64{8, 16, 88, 96, 800, 896})
	// mCascadeDepth distributes nested reaction-emission depth; only nested
	// dispatches (depth > 0) are observed.
	mCascadeDepth = obs.Default().Histogram("gis_active_cascade_depth",
		[]float64{1, 2, 4, 8, 16})

	// Decision-cache traffic (DESIGN.md §10): hits skip the candidate scan,
	// match tests and selection contest entirely; invalidations count rule
	// mutations (each bumps the epoch, aging every cached plan at once);
	// uncacheable counts dispatches that had to bypass the cache because a
	// When-predicate rule or an extended context made the decision dynamic.
	mCacheHits          = obs.Default().Counter("gis_rule_cache_hits_total")
	mCacheMisses        = obs.Default().Counter("gis_rule_cache_misses_total")
	mCacheInvalidations = obs.Default().Counter("gis_rule_cache_invalidations_total")
	mCacheUncacheable   = obs.Default().Counter("gis_rule_cache_uncacheable_total")
	// mPendingDropped counts undelivered customizations evicted from the
	// bounded pending map (a caller dispatched events but never claimed the
	// selections via TakeCustomization).
	mPendingDropped = obs.Default().Counter("gis_rule_pending_dropped_total")
)

// Errors returned by the engine.
var (
	ErrBadRule        = errors.New("active: invalid rule")
	ErrDuplicateRule  = errors.New("active: duplicate rule name")
	ErrUnknownRule    = errors.New("active: unknown rule")
	ErrCascadeLimit   = errors.New("active: cascade depth limit exceeded")
	ErrUndeclaredEmit = errors.New("active: emission not declared in the rule's Emits")
)

// Family partitions the rule set, as §3.3 suggests ("the rule set may be
// partitioned into (at least) two subsets: rules for interface
// customization, and other rules").
type Family uint8

// Rule families.
const (
	// FamilyCustomization rules select presentation directives; one per
	// event, most specific wins.
	FamilyCustomization Family = iota + 1
	// FamilyConstraint rules guard mutations (topological integrity);
	// all matches run and any error vetoes.
	FamilyConstraint
	// FamilyReaction rules are generic ECA reactions (logging, derived
	// updates, view refresh à la Diaz et al.); all matches run.
	FamilyReaction
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilyCustomization:
		return "customization"
	case FamilyConstraint:
		return "constraint"
	case FamilyReaction:
		return "reaction"
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// CustomizationAction computes the customization a rule delivers. It must
// not mutate the database or emit events (the engine does not hand it the
// emit capability, enforcing the paper's no-cascade property structurally).
type CustomizationAction func(e event.Event) (spec.Customization, error)

// ReactionAction reacts to an event. The Emitter lets it cascade — emit
// follow-up events through the engine, which tracks depth.
type ReactionAction func(e event.Event, em Emitter) error

// Emitter re-enters the engine from inside a reaction rule.
type Emitter interface {
	// EmitNested dispatches a follow-up event at the current cascade
	// depth + 1.
	EmitNested(e event.Event) error
}

// Rule is an ECA rule.
type Rule struct {
	// Name uniquely identifies the rule.
	Name string
	// Family selects execution semantics.
	Family Family
	// On is the triggering event kind.
	On event.Kind
	// Schema/Class/Attr scope the rule; empty components are wildcards.
	Schema, Class, Attr string
	// Context is the condition: the context pattern that must cover the
	// event's context.
	Context event.Context
	// Cond is an optional declared condition expression (ruleanalysis
	// condition grammar) over the event's named dimensions, evaluated under
	// event.Dim; empty means true. Unlike the opaque When func the engine
	// can show Cond to the static analyzer, so ambiguity/shadowing/dead-rule
	// checks reason about its satisfiability instead of downgrading to
	// warnings. The engine enforces it at dispatch — the rule matches only
	// when Cond holds — which is what makes those static conclusions sound.
	// A Cond that reads only cache-key dimensions (user, category,
	// application, schema, class, attr, or Extra keys) keeps the rule
	// decision-cacheable; one that reads oid or name is evaluated with the
	// When predicate and makes matching shapes uncacheable.
	Cond string
	// When is an optional extra predicate over the event (nil = true). A
	// non-nil When makes every event shape the rule could statically match
	// uncacheable: the predicate may inspect dynamic event fields (OID,
	// Old/New values), so the winning decision cannot be memoized.
	When func(event.Event) bool
	// Priority breaks specificity ties; higher wins. The compiler fills
	// it from the directive's optional priority clause (zero by default);
	// hand-written rules may use it. Full ties (equal specificity and
	// priority) break deterministically by rule name.
	Priority int
	// Emits declares the event patterns the React action may emit through
	// its Emitter. The engine ENFORCES the declaration: an emission not
	// covered by Emits fails with ErrUndeclaredEmit, so nil means "emits
	// nothing". The static analyzer (ruleanalysis, Engine.CheckSet) builds
	// the rule-triggering graph from these declarations — termination
	// analysis is only as sound as the declarations, which is why they are
	// enforced rather than advisory. Customization rules must leave Emits
	// nil: they never receive an Emitter (the paper's no-cascade property,
	// enforced structurally).
	Emits []event.Pattern
	// Src optionally records where the rule came from (the custlang
	// compiler threads the source clause's position here); static-analysis
	// diagnostics carry it.
	Src ruleanalysis.Position
	// Customize is the action for FamilyCustomization rules.
	Customize CustomizationAction
	// React is the action for FamilyConstraint and FamilyReaction rules.
	React ReactionAction

	// specScore caches specificity() on the engine's stored copy so the
	// selection contest and the pre-sorted bucket order never recompute it
	// on the hot path. Filled by AddRule.
	specScore int
	// cond is the parsed form of Cond; condDynamic marks a condition that
	// reads dimensions outside the decision-cache key (oid, name) and must
	// therefore be evaluated on the When path. Filled by AddRule.
	cond        *ruleanalysis.Cond
	condDynamic bool
}

// matchesStatic reports whether the rule's event pattern, context and
// static condition cover e, ignoring the dynamic predicates (When and a
// cache-dynamic Cond). Every dimension it reads is part of the
// decision-cache key — or an Extra dimension, and Extra-carrying events
// never reach the cache — so its outcome is a pure function of the key.
func (r *Rule) matchesStatic(e event.Event) bool {
	if r.On != e.Kind {
		return false
	}
	if r.Schema != "" && r.Schema != e.Schema {
		return false
	}
	if r.Class != "" && r.Class != e.Class {
		return false
	}
	if r.Attr != "" && r.Attr != e.Attr {
		return false
	}
	if !r.Context.Matches(e.Ctx) {
		return false
	}
	if r.cond != nil && !r.condDynamic {
		return r.cond.Eval(e.Dim)
	}
	return true
}

// matchesDynamic evaluates the predicates excluded from matchesStatic: a
// cache-dynamic condition, then the When func.
func (r *Rule) matchesDynamic(e event.Event) bool {
	if r.condDynamic && !r.cond.Eval(e.Dim) {
		return false
	}
	return r.When == nil || r.When(e)
}

// matches reports whether the rule's event pattern and condition cover e.
func (r *Rule) matches(e event.Event) bool {
	return r.matchesStatic(e) && r.matchesDynamic(e)
}

// specificity orders customization rules: context specificity first, then
// event-scope narrowness, then Priority. It delegates to the shared scoring
// in ruleanalysis so the static analyzer can never drift from the
// dispatcher.
func (r *Rule) specificity() int {
	return ruleanalysis.Specificity(r.Context, r.Schema, r.Class, r.Attr)
}

// beats reports whether a wins the customization selection contest against
// b: higher specificity, then higher priority, then — so selection is
// deterministic regardless of insertion order or Indexed mode — the
// lexicographically smaller name. Both rules must be engine-stored copies
// (AddRule fills specScore).
func beats(a, b *Rule) bool {
	if a.specScore != b.specScore {
		return a.specScore > b.specScore
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Name < b.Name
}

// othersBefore orders constraint and reaction rules for execution:
// constraints first (a veto must precede side effects), then priority
// descending, then name ascending so execution order is deterministic.
func othersBefore(a, b *Rule) bool {
	if (a.Family == FamilyConstraint) != (b.Family == FamilyConstraint) {
		return a.Family == FamilyConstraint
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Name < b.Name
}

// emitDeclared reports whether the rule's Emits declaration covers e.
func (r *Rule) emitDeclared(e event.Event) bool {
	for _, p := range r.Emits {
		if p.Matches(e) {
			return true
		}
	}
	return false
}

// analysisInfo converts the rule to its statically analyzable shape.
func (r *Rule) analysisInfo() ruleanalysis.RuleInfo {
	return ruleanalysis.RuleInfo{
		Name:     r.Name,
		Family:   r.Family.String(),
		On:       r.On,
		Schema:   r.Schema,
		Class:    r.Class,
		Attr:     r.Attr,
		Context:  r.Context,
		Priority: r.Priority,
		Cond:     r.Cond,
		HasWhen:  r.When != nil,
		Emits:    append([]event.Pattern(nil), r.Emits...),
		Pos:      r.Src,
	}
}

// condReadsDynamic reports whether the condition reads a dimension outside
// the decision-cache key: oid and name are event-instance data the planKey
// does not discriminate on, so a condition over them must run on the
// uncacheable (When) path. Every other dimension is either a key field or
// an Extra key, and Extra-carrying events bypass the cache anyway.
func condReadsDynamic(c *ruleanalysis.Cond) bool {
	for _, v := range c.Vars() {
		if v == "oid" || v == "name" {
			return true
		}
	}
	return false
}

// Stats counts engine activity.
type Stats struct {
	// Events is the number of events inspected.
	Events uint64
	// Evaluated counts rule match tests performed (the B1 ablation
	// contrasts indexed vs. linear lookup through this counter; a decision
	// cache hit performs zero match tests).
	Evaluated uint64
	// Fired counts actions executed (all families).
	Fired uint64
	// Selected counts customization selections delivered.
	Selected uint64
	// Suppressed counts matching customization rules that lost the
	// specificity contest.
	Suppressed uint64
}

// CacheStats counts decision-cache traffic for one engine (the registry
// counters gis_rule_cache_* aggregate the same events across engines).
type CacheStats struct {
	// Hits counts dispatches answered from a memoized plan.
	Hits uint64
	// Misses counts dispatches that scanned and then stored a plan.
	Misses uint64
	// Uncacheable counts dispatches that bypassed the cache (When rule in
	// the candidate set, extended context, or SelectAll).
	Uncacheable uint64
	// Invalidations counts epoch bumps (one per rule mutation).
	Invalidations uint64
	// PendingDropped counts unclaimed customizations evicted from the
	// bounded pending map.
	PendingDropped uint64
}

// HitRatio returns Hits / (Hits + Misses + Uncacheable), or 0 when idle.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Uncacheable
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// engineStats is the live, lock-free form of Stats: dispatch updates these
// with atomic adds so the hot path never takes the engine mutex just to
// count.
type engineStats struct {
	events, evaluated, fired, selected, suppressed atomic.Uint64

	cacheHits, cacheMisses, cacheUncacheable atomic.Uint64
	cacheInvalidations, pendingDropped       atomic.Uint64
}

// DefaultMaxCascade bounds reaction-rule cascades.
const DefaultMaxCascade = 16

// DefaultMaxPending bounds the pending-customization map when MaxPending is
// zero. Entries past the bound are evicted oldest-first; a healthy caller
// claims every selection immediately after the emitting primitive returns,
// so only abandoned selections are ever dropped.
const DefaultMaxPending = 4096

// maxCachedPlans bounds the decision cache. The key space is the set of
// distinct event shapes actually dispatched, which a deployment with many
// users can grow without bound; at the cap the whole cache is reset (cheap,
// rare, and self-repopulating).
const maxCachedPlans = 8192

// kindUser is the two-level index key.
type kindUser struct {
	kind event.Kind
	user string
}

// bucket holds the rules of one index slot, pre-sorted at install time:
// cust in selection order (winner first, per beats) and others in execution
// order (per othersBefore). Dispatch merges at most two buckets and never
// sorts.
type bucket struct {
	cust   []*Rule
	others []*Rule
}

func (b *bucket) insert(r *Rule) {
	if r.Family == FamilyCustomization {
		b.cust = insertSorted(b.cust, r, beats)
	} else {
		b.others = insertSorted(b.others, r, othersBefore)
	}
}

func (b *bucket) remove(r *Rule) {
	if r.Family == FamilyCustomization {
		b.cust = removeRule(b.cust, r)
	} else {
		b.others = removeRule(b.others, r)
	}
}

func (b *bucket) empty() bool { return len(b.cust) == 0 && len(b.others) == 0 }

// insertSorted places r into rs keeping the order induced by before.
func insertSorted(rs []*Rule, r *Rule, before func(a, b *Rule) bool) []*Rule {
	i := sort.Search(len(rs), func(i int) bool { return before(r, rs[i]) })
	rs = append(rs, nil)
	copy(rs[i+1:], rs[i:])
	rs[i] = r
	return rs
}

func removeRule(rs []*Rule, target *Rule) []*Rule {
	for i, r := range rs {
		if r == target {
			return append(rs[:i], rs[i+1:]...)
		}
	}
	return rs
}

// planKey identifies an event shape for decision caching: every event field
// a rule's static pattern can discriminate on. Events whose context carries
// Extra dimensions never reach the cache (the key cannot cover an open map
// without allocating), and the dynamic When predicate is handled by marking
// the shape uncacheable at scan time.
type planKey struct {
	kind                event.Kind
	schema, class, attr string
	user, category, app string
}

func planKeyOf(e event.Event) planKey {
	return planKey{
		kind: e.Kind, schema: e.Schema, class: e.Class, attr: e.Attr,
		user: e.Ctx.User, category: e.Ctx.Category, app: e.Ctx.Application,
	}
}

// plan is a memoized dispatch decision: the rules that match the event
// shape, already selected and ordered, plus the epoch it was computed in.
// A plan is immutable after publication.
type plan struct {
	epoch      uint64
	best       *Rule   // winning customization rule, nil when none matches
	others     []*Rule // matching constraint/reaction rules in execution order
	suppressed uint64  // customization matches that lost the contest
}

// scratch is the per-dispatch candidate workspace, pooled so steady-state
// dispatch allocates nothing for candidate collection.
type scratch struct {
	cust, others []*Rule
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// pendingKey identifies an event for the pending-customization hand-off.
// Unlike planKey it includes the instance OID: concurrent sessions fetching
// different instances must not collide.
type pendingKey struct {
	kind                event.Kind
	schema, class, attr string
	oid                 catalog.OID
	user, category, app string
}

func pendingKeyOf(e event.Event) pendingKey {
	return pendingKey{
		kind: e.Kind, schema: e.Schema, class: e.Class, attr: e.Attr, oid: e.OID,
		user: e.Ctx.User, category: e.Ctx.Category, app: e.Ctx.Application,
	}
}

// Engine is the active mechanism. Subscribe it to a database bus with
// db.Bus().Subscribe(engine); it is safe for concurrent use.
type Engine struct {
	mu    sync.RWMutex
	rules map[string]*Rule
	// byKindUser is the two-level rule index: rules keyed by triggering
	// event kind plus the user their context pins (empty for rules whose
	// context does not name a user). Lookup unions the event's user bucket
	// with the wildcard bucket, so with U distinct users the per-event
	// candidate set shrinks by ~U versus the linear scan (B1 ablates
	// this against the linear bucket).
	byKindUser map[kindUser]*bucket
	// linear holds every rule (pre-sorted like any bucket) for the
	// Indexed=false ablation and for RuleInfos.
	linear bucket
	stats  engineStats
	tracer obs.Tracer

	// epoch versions the rule set; every AddRule/RemoveRule bumps it,
	// aging all cached plans at once. Plans record the epoch they were
	// computed in and are ignored when it no longer matches.
	epoch atomic.Uint64

	cacheMu sync.RWMutex
	cache   map[planKey]*plan

	// pending holds the customization selected for the most recent event
	// with a given identity; the UI dispatcher pops it right after the
	// database primitive returns (dispatch is synchronous, so the entry is
	// present by then). Keyed by the full event identity including context
	// and OID, so concurrent sessions do not collide. Bounded by MaxPending
	// with oldest-first eviction (pendingQ is the FIFO of insertions).
	pending  map[pendingKey]spec.Customization
	pendingQ []pendingKey

	// Indexed selects the (event kind)-indexed rule lookup; when false the
	// engine scans every rule (the naïve baseline B1 measures against).
	Indexed bool
	// CacheDecisions enables the dispatch-decision cache. On by default;
	// the B1 lookup-strategy ablations switch it off so they measure the
	// scan itself. SelectAll, When-predicate rules and extended contexts
	// bypass the cache regardless.
	CacheDecisions bool
	// SelectAll is the ablation of the paper's execution model: when true,
	// EVERY matching customization rule fires, in ascending specificity
	// order, each overwriting the previous selection. The final
	// customization equals the single-select result (most specific last),
	// but every action runs — the cost the paper's "only one rule is
	// selected" avoids, and a semantic hazard if actions had side effects.
	SelectAll bool
	// MaxCascade bounds nested reaction emissions.
	MaxCascade int
	// MaxPending bounds the pending-customization map; zero means
	// DefaultMaxPending. When full, the oldest unclaimed entry is dropped
	// (counted in gis_rule_pending_dropped_total).
	MaxPending int
	// Trace, when non-nil, receives a line per engine decision (experiment
	// F1 renders these). It is the legacy string hook, kept as a
	// compatibility shim over the structured span layer: the engine emits
	// the same decisions as spans through Tracer(), and additionally
	// formats them into lines when Trace is set. Prefer AttachSpans.
	Trace func(string)
}

// Tracer exposes the engine's span tracer; attach an obs.SpanRecorder to
// capture structured dispatch/fire/select spans. With no recorder attached
// the span path costs one atomic load per dispatch and allocates nothing.
func (en *Engine) Tracer() *obs.Tracer { return &en.tracer }

// AttachSpans directs the engine's structured trace spans into rec (nil
// detaches). It replaces the string Trace hook for programmatic consumers.
func (en *Engine) AttachSpans(rec *obs.SpanRecorder) { en.tracer.Attach(rec) }

func indexKey(r *Rule) kindUser {
	return kindUser{kind: r.On, user: r.Context.User}
}

// NewEngine returns an engine with indexed lookup, decision caching and the
// default cascade bound.
func NewEngine() *Engine {
	return &Engine{
		rules:          make(map[string]*Rule),
		byKindUser:     make(map[kindUser]*bucket),
		cache:          make(map[planKey]*plan),
		pending:        make(map[pendingKey]spec.Customization),
		Indexed:        true,
		CacheDecisions: true,
		MaxCascade:     DefaultMaxCascade,
	}
}

// invalidateLocked ages every cached plan after a rule mutation. Caller
// holds en.mu; the epoch bump makes stale plans unusable even by dispatches
// that already read them out of the map, so a stale winner is never served
// past the mutation that obsoleted it.
func (en *Engine) invalidateLocked() {
	en.epoch.Add(1)
	en.stats.cacheInvalidations.Add(1)
	mCacheInvalidations.Inc()
}

// AddRule validates and installs a rule.
func (en *Engine) AddRule(r Rule) error {
	if r.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadRule)
	}
	if r.On == 0 {
		return fmt.Errorf("%w: rule %q has no triggering event", ErrBadRule, r.Name)
	}
	switch r.Family {
	case FamilyCustomization:
		if r.Customize == nil {
			return fmt.Errorf("%w: customization rule %q has no Customize action", ErrBadRule, r.Name)
		}
		if r.React != nil {
			return fmt.Errorf("%w: customization rule %q must not have a React action", ErrBadRule, r.Name)
		}
		if len(r.Emits) > 0 {
			return fmt.Errorf("%w: customization rule %q cannot emit events (no Emitter is ever handed to it)", ErrBadRule, r.Name)
		}
	case FamilyConstraint, FamilyReaction:
		if r.React == nil {
			return fmt.Errorf("%w: %s rule %q has no React action", ErrBadRule, r.Family, r.Name)
		}
		if r.Customize != nil {
			return fmt.Errorf("%w: %s rule %q must not have a Customize action", ErrBadRule, r.Family, r.Name)
		}
	default:
		return fmt.Errorf("%w: rule %q has unknown family", ErrBadRule, r.Name)
	}
	cond, err := ruleanalysis.ParseCond(r.Cond)
	if err != nil {
		return fmt.Errorf("%w: rule %q: %v", ErrBadRule, r.Name, err)
	}
	en.mu.Lock()
	defer en.mu.Unlock()
	if _, ok := en.rules[r.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateRule, r.Name)
	}
	stored := r
	stored.cond = cond
	stored.condDynamic = condReadsDynamic(cond)
	stored.specScore = stored.specificity()
	en.rules[r.Name] = &stored
	en.linear.insert(&stored)
	key := indexKey(&stored)
	b := en.byKindUser[key]
	if b == nil {
		b = &bucket{}
		en.byKindUser[key] = b
	}
	b.insert(&stored)
	en.invalidateLocked()
	return nil
}

// RemoveRule uninstalls a rule by name.
func (en *Engine) RemoveRule(name string) error {
	en.mu.Lock()
	defer en.mu.Unlock()
	r, ok := en.rules[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
	delete(en.rules, name)
	en.linear.remove(r)
	key := indexKey(r)
	if b := en.byKindUser[key]; b != nil {
		b.remove(r)
		if b.empty() {
			delete(en.byKindUser, key)
		}
	}
	en.invalidateLocked()
	return nil
}

// Rules lists installed rule names in sorted order.
func (en *Engine) Rules() []string {
	en.mu.RLock()
	defer en.mu.RUnlock()
	out := make([]string, 0, len(en.rules))
	for name := range en.rules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RuleCount reports the number of installed rules.
func (en *Engine) RuleCount() int {
	en.mu.RLock()
	defer en.mu.RUnlock()
	return len(en.rules)
}

// Stats returns a snapshot of the engine counters.
func (en *Engine) Stats() Stats {
	return Stats{
		Events:     en.stats.events.Load(),
		Evaluated:  en.stats.evaluated.Load(),
		Fired:      en.stats.fired.Load(),
		Selected:   en.stats.selected.Load(),
		Suppressed: en.stats.suppressed.Load(),
	}
}

// CacheStats returns a snapshot of the engine's decision-cache counters.
func (en *Engine) CacheStats() CacheStats {
	return CacheStats{
		Hits:           en.stats.cacheHits.Load(),
		Misses:         en.stats.cacheMisses.Load(),
		Uncacheable:    en.stats.cacheUncacheable.Load(),
		Invalidations:  en.stats.cacheInvalidations.Load(),
		PendingDropped: en.stats.pendingDropped.Load(),
	}
}

// Epoch reports the rule-set version: it advances on every AddRule and
// RemoveRule (including strict-install rollbacks, which remove through the
// same path). Cached decisions from older epochs are never served.
func (en *Engine) Epoch() uint64 { return en.epoch.Load() }

// CachedPlans reports how many dispatch plans are currently memoized.
func (en *Engine) CachedPlans() int {
	en.cacheMu.RLock()
	defer en.cacheMu.RUnlock()
	return len(en.cache)
}

// ResetStats zeroes the counters (benchmarks use this between phases).
func (en *Engine) ResetStats() {
	en.stats.events.Store(0)
	en.stats.evaluated.Store(0)
	en.stats.fired.Store(0)
	en.stats.selected.Store(0)
	en.stats.suppressed.Store(0)
	en.stats.cacheHits.Store(0)
	en.stats.cacheMisses.Store(0)
	en.stats.cacheUncacheable.Store(0)
	en.stats.cacheInvalidations.Store(0)
	en.stats.pendingDropped.Store(0)
}

// HandleEvent implements event.Handler; it is the bus-facing entry point.
func (en *Engine) HandleEvent(e event.Event) error {
	return en.dispatch(e, 0)
}

type nestedEmitter struct {
	en    *Engine
	depth int
	// rule is the reaction rule the emitter was handed to; emissions are
	// checked against its Emits declaration so the static triggering
	// graph (Engine.CheckSet) stays sound.
	rule *Rule
}

func (ne nestedEmitter) EmitNested(e event.Event) error {
	if !ne.rule.emitDeclared(e) {
		return fmt.Errorf("%w: rule %q emitted [%s]", ErrUndeclaredEmit, ne.rule.Name, e)
	}
	return ne.en.dispatch(e, ne.depth+1)
}

// collect gathers the statically matching rules for e into sc, merging the
// pre-sorted user and wildcard buckets so sc.cust arrives in selection
// order and sc.others in execution order. It runs entirely under the read
// lock — the static match reads only engine-owned data, never caller code.
// It returns the number of match tests performed and whether any collected
// rule carries a dynamic When predicate.
func (en *Engine) collect(e event.Event, sc *scratch) (evaluated uint64, hasWhen bool) {
	en.mu.RLock()
	var ub, wb *bucket
	if en.Indexed {
		ub = en.byKindUser[kindUser{e.Kind, e.Ctx.User}]
		if e.Ctx.User != "" {
			// Rules whose context does not pin a user match any user.
			wb = en.byKindUser[kindUser{e.Kind, ""}]
		}
	} else {
		ub = &en.linear
	}
	var uc, uo, wc, wo []*Rule
	if ub != nil {
		uc, uo = ub.cust, ub.others
	}
	if wb != nil {
		wc, wo = wb.cust, wb.others
	}
	evaluated += mergeCollect(&sc.cust, uc, wc, beats, e, &hasWhen)
	evaluated += mergeCollect(&sc.others, uo, wo, othersBefore, e, &hasWhen)
	en.mu.RUnlock()
	return evaluated, hasWhen
}

// mergeCollect walks two before-sorted rule slices in merged order,
// appending the statically matching ones to dst. It reports the number of
// rules tested and flags any matching rule with a When predicate.
func mergeCollect(dst *[]*Rule, xs, ys []*Rule, before func(a, b *Rule) bool, e event.Event, hasWhen *bool) uint64 {
	var evaluated uint64
	i, j := 0, 0
	for i < len(xs) || j < len(ys) {
		var r *Rule
		if j >= len(ys) || (i < len(xs) && before(xs[i], ys[j])) {
			r = xs[i]
			i++
		} else {
			r = ys[j]
			j++
		}
		evaluated++
		if !r.matchesStatic(e) {
			continue
		}
		if r.When != nil || r.condDynamic {
			*hasWhen = true
		}
		*dst = append(*dst, r)
	}
	return evaluated
}

// filterWhen drops rules whose dynamic predicates (cache-dynamic Cond or
// When) reject e, in place, preserving order. It runs outside every engine
// lock: When predicates are caller code.
func filterWhen(rs []*Rule, e event.Event) []*Rule {
	kept := rs[:0]
	for _, r := range rs {
		if r.matchesDynamic(e) {
			kept = append(kept, r)
		}
	}
	return kept
}

func (en *Engine) dispatch(e event.Event, depth int) error {
	if depth > en.MaxCascade {
		return fmt.Errorf("%w: depth %d on %s", ErrCascadeLimit, depth, e)
	}
	if depth > 0 {
		mCascadeDepth.Observe(float64(depth))
	}
	sp := en.tracer.StartSpan("active.dispatch", e.Ctx.Trace)
	if sp != nil {
		sp.Set("event", e.Kind.String()).Set("ctx", e.Ctx.String())
		if e.Class != "" {
			sp.Set("class", e.Class)
		}
		if depth > 0 {
			sp.Setf("depth", "%d", depth)
		}
		defer sp.Finish()
	}

	// Fast path: a memoized plan for this event shape, still in epoch.
	cacheable := en.CacheDecisions && !en.SelectAll
	if cacheable && len(e.Ctx.Extra) != 0 {
		// Extra context dimensions are an open map: the fixed cache key
		// cannot cover them, so such events always take the scan path.
		cacheable = false
		en.stats.cacheUncacheable.Add(1)
		mCacheUncacheable.Inc()
		sp.Set("cache", "uncacheable")
	}
	var key planKey
	var epoch uint64
	if cacheable {
		key = planKeyOf(e)
		epoch = en.epoch.Load()
		en.cacheMu.RLock()
		p := en.cache[key]
		en.cacheMu.RUnlock()
		if p != nil && p.epoch == epoch {
			en.stats.cacheHits.Add(1)
			mCacheHits.Inc()
			if sp != nil {
				sp.Set("cache", "hit")
			}
			return en.run(e, p.best, p.others, p.suppressed, sp, depth, true)
		}
	}

	sc := scratchPool.Get().(*scratch)
	evaluated, hasWhen := en.collect(e, sc)
	if hasWhen {
		// When predicates are caller code, evaluated outside the lock;
		// their outcome may depend on event fields beyond the cache key,
		// so this shape must not be memoized.
		sc.cust = filterWhen(sc.cust, e)
		sc.others = filterWhen(sc.others, e)
	}
	en.stats.evaluated.Add(evaluated)
	mEvaluated.Add(evaluated)
	if sp != nil {
		sp.Setf("candidates", "%d", evaluated)
	}

	var best *Rule
	var suppressed uint64
	if !en.SelectAll {
		if len(sc.cust) > 0 {
			best = sc.cust[0]
			suppressed = uint64(len(sc.cust) - 1)
		}
		if cacheable {
			if hasWhen {
				en.stats.cacheUncacheable.Add(1)
				mCacheUncacheable.Inc()
				sp.Set("cache", "uncacheable")
			} else {
				en.stats.cacheMisses.Add(1)
				mCacheMisses.Inc()
				sp.Set("cache", "miss")
				p := &plan{
					epoch:      epoch,
					best:       best,
					others:     append([]*Rule(nil), sc.others...),
					suppressed: suppressed,
				}
				en.cacheMu.Lock()
				if len(en.cache) >= maxCachedPlans {
					clear(en.cache)
				}
				en.cache[key] = p
				en.cacheMu.Unlock()
			}
		}
		err := en.run(e, best, sc.others, suppressed, sp, depth, false)
		putScratch(sc)
		return err
	}

	// SelectAll ablation: every matching customization rule fires, least
	// specific first, so the most specific lands last in the pending slot —
	// the reverse of sc.cust's selection order. Never cached.
	err := en.runSelectAll(e, sc, sp, depth)
	putScratch(sc)
	return err
}

func putScratch(sc *scratch) {
	sc.cust = sc.cust[:0]
	sc.others = sc.others[:0]
	scratchPool.Put(sc)
}

// run executes a dispatch decision — the matched constraint/reaction rules
// in order, then the winning customization rule — and updates the activity
// counters. It is shared by the cache hit and miss paths; fromCache only
// affects tracing.
func (en *Engine) run(e event.Event, best *Rule, others []*Rule, suppressed uint64, sp *obs.Span, depth int, fromCache bool) error {
	en.stats.events.Add(1)
	en.stats.suppressed.Add(suppressed)
	mEvents.Inc()
	mSuppressed.Add(suppressed)

	// Constraint and reaction rules run for every match, constraints first
	// (a veto must precede side effects); others is already in that order.
	for _, r := range others {
		en.trace("fire %s rule %q on %s", r.Family, r.Name, e.Kind)
		en.countFired()
		fsp := sp.Child("rule.fire")
		fsp.Set("rule", r.Name).Set("family", r.Family.String())
		sw := obs.Start(mFireSeconds)
		err := r.React(e, nestedEmitter{en: en, depth: depth, rule: r})
		sw.Stop()
		fsp.Finish()
		if err != nil {
			return fmt.Errorf("rule %q: %w", r.Name, err)
		}
	}
	if best != nil {
		if fromCache {
			en.trace("select customization rule %q (specificity %d, cached) for %s in %s",
				best.Name, best.specScore, e.Kind, e.Ctx)
		} else {
			en.trace("select customization rule %q (specificity %d) for %s in %s",
				best.Name, best.specScore, e.Kind, e.Ctx)
		}
		en.countFired()
		mSpecificity.Observe(float64(best.specScore))
		if sp != nil {
			sp.Set("selected", best.Name).Setf("specificity", "%d", best.specScore)
		}
		sw := obs.Start(mFireSeconds)
		cust, err := best.Customize(e)
		sw.Stop()
		if err != nil {
			return fmt.Errorf("customization rule %q: %w", best.Name, err)
		}
		if cust.Origin == "" {
			cust.Origin = best.Name
		}
		en.stats.selected.Add(1)
		mSelected.Inc()
		en.storePending(e, cust)
	}
	return nil
}

// runSelectAll is the fire-every-match ablation path.
func (en *Engine) runSelectAll(e event.Event, sc *scratch, sp *obs.Span, depth int) error {
	en.stats.events.Add(1)
	mEvents.Inc()
	for _, r := range sc.others {
		en.trace("fire %s rule %q on %s", r.Family, r.Name, e.Kind)
		en.countFired()
		fsp := sp.Child("rule.fire")
		fsp.Set("rule", r.Name).Set("family", r.Family.String())
		sw := obs.Start(mFireSeconds)
		err := r.React(e, nestedEmitter{en: en, depth: depth, rule: r})
		sw.Stop()
		fsp.Finish()
		if err != nil {
			return fmt.Errorf("rule %q: %w", r.Name, err)
		}
	}
	for i := len(sc.cust) - 1; i >= 0; i-- {
		r := sc.cust[i]
		en.trace("fire-all customization rule %q for %s", r.Name, e.Kind)
		en.countFired()
		sw := obs.Start(mFireSeconds)
		cust, err := r.Customize(e)
		sw.Stop()
		if err != nil {
			return fmt.Errorf("customization rule %q: %w", r.Name, err)
		}
		if cust.Origin == "" {
			cust.Origin = r.Name
		}
		en.stats.selected.Add(1)
		mSelected.Inc()
		en.storePending(e, cust)
	}
	return nil
}

func (en *Engine) countFired() {
	en.stats.fired.Add(1)
	mFired.Inc()
}

func (en *Engine) trace(format string, args ...any) {
	if en.Trace != nil {
		en.Trace(fmt.Sprintf(format, args...))
	}
}

// storePending records a selected customization for the UI dispatcher to
// claim, evicting the oldest unclaimed entry when the bound is reached.
func (en *Engine) storePending(e event.Event, cust spec.Customization) {
	k := pendingKeyOf(e)
	en.mu.Lock()
	limit := en.MaxPending
	if limit <= 0 {
		limit = DefaultMaxPending
	}
	if _, exists := en.pending[k]; !exists && len(en.pending) >= limit {
		en.evictPendingLocked()
	}
	en.pending[k] = cust
	en.pendingQ = append(en.pendingQ, k)
	if len(en.pendingQ) > 2*limit {
		en.compactPendingQLocked()
	}
	en.mu.Unlock()
}

// evictPendingLocked drops the oldest still-unclaimed pending entry. Keys
// already claimed via TakeCustomization linger in the FIFO until skipped
// here or compacted. Caller holds en.mu.
func (en *Engine) evictPendingLocked() {
	for len(en.pendingQ) > 0 {
		k := en.pendingQ[0]
		en.pendingQ = en.pendingQ[1:]
		if _, ok := en.pending[k]; ok {
			delete(en.pending, k)
			en.stats.pendingDropped.Add(1)
			mPendingDropped.Inc()
			return
		}
	}
	// FIFO exhausted (every queued key was claimed or overwritten) but the
	// map is still at the bound: drop an arbitrary entry so the bound holds.
	for k := range en.pending {
		delete(en.pending, k)
		en.stats.pendingDropped.Add(1)
		mPendingDropped.Inc()
		return
	}
}

// compactPendingQLocked rebuilds the FIFO keeping only the first queue
// entry of each key still present in the map, so the queue length stays
// O(MaxPending) even when callers claim entries promptly (claims leave
// stale keys behind). Caller holds en.mu.
func (en *Engine) compactPendingQLocked() {
	seen := make(map[pendingKey]struct{}, len(en.pending))
	kept := en.pendingQ[:0]
	for _, k := range en.pendingQ {
		if _, live := en.pending[k]; !live {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		kept = append(kept, k)
	}
	// Re-slice into a fresh array when the old backing store is mostly
	// stale, so the discarded prefix can be collected.
	en.pendingQ = append(make([]pendingKey, 0, len(kept)), kept...)
}

// TakeCustomization pops the customization selected for the given event, if
// a rule fired for it. The UI dispatcher calls this immediately after the
// database primitive that emitted the event returns; because the bus is
// synchronous, selection has already happened on the same goroutine.
func (en *Engine) TakeCustomization(e event.Event) (spec.Customization, bool) {
	key := pendingKeyOf(e)
	en.mu.Lock()
	defer en.mu.Unlock()
	c, ok := en.pending[key]
	if ok {
		delete(en.pending, key)
	}
	return c, ok
}

// PendingCount reports undelivered customizations (should be 0 between
// interactions; tests assert no leaks).
func (en *Engine) PendingCount() int {
	en.mu.RLock()
	defer en.mu.RUnlock()
	return len(en.pending)
}

// RuleInfos snapshots the installed rules in their statically analyzable
// shape, sorted by name.
func (en *Engine) RuleInfos() []ruleanalysis.RuleInfo {
	en.mu.RLock()
	infos := make([]ruleanalysis.RuleInfo, 0, len(en.rules))
	for _, r := range en.rules {
		infos = append(infos, r.analysisInfo())
	}
	en.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// CheckSet statically analyzes the installed rule set: triggering-graph
// cycles (non-termination), ambiguous customization pairs, and shadowed
// (dead) rules. It is the engine-level entry point of the gislint checks;
// the custlang compiler's strict Install and cmd/gislint both run it.
func (en *Engine) CheckSet() []ruleanalysis.Finding {
	return ruleanalysis.CheckRules(en.RuleInfos())
}
