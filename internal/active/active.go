// Package active implements the active database mechanism of §3.3: an ECA
// (Event-Condition-Action) rule engine that intercepts the database events
// emitted by the geographic DBMS and, among its rule families, supports the
// paper's new family — interface customization rules.
//
// Rule semantics follow the paper precisely:
//
//   - A rule is "On Event Ei If Condition Cj Then Apply Customization CTn".
//   - Conditions do not check a database state but the user's working
//     environment: a context pattern <user, category, application>.
//   - Several customization rules may match one event (one per context);
//     only the single most specific rule executes. Specificity is the
//     context pattern's restrictiveness (user > category > application),
//     with an explicit Priority field as tiebreak.
//   - Customization rule actions are deliberately limited to "getting a
//     customization for an interface object", which is what makes the rule
//     family confluent (no cascades, no conflicts).
//   - Other families — constraint rules and generic reaction rules — run
//     for every match, may veto mutations (by returning an error from a
//     Pre* event) and may cascade by emitting follow-up events, bounded by
//     a cycle-guarding depth limit.
package active

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/ruleanalysis"
	"repro/internal/spec"
)

// Registry handles for the engine's global activity metrics (§ Observability
// in DESIGN.md). Per-engine counts stay on the engine (Stats); these
// aggregate across engines and feed the STATS verb and --metrics endpoint.
var (
	mEvents     = obs.Default().Counter("gis_active_events_total")
	mEvaluated  = obs.Default().Counter("gis_active_rules_evaluated_total")
	mFired      = obs.Default().Counter("gis_active_rules_fired_total")
	mSelected   = obs.Default().Counter("gis_active_customizations_selected_total")
	mSuppressed = obs.Default().Counter("gis_active_customizations_suppressed_total")
	// mFireSeconds times individual rule-action executions.
	mFireSeconds = obs.Default().Histogram("gis_active_rule_fire_seconds", obs.LatencyBuckets)
	// mSpecificity distributes the specificity of winning customization
	// rules (bounds cover Context.Specificity()*8 + scope bits).
	mSpecificity = obs.Default().Histogram("gis_active_selected_specificity",
		[]float64{8, 16, 88, 96, 800, 896})
	// mCascadeDepth distributes nested reaction-emission depth; only nested
	// dispatches (depth > 0) are observed.
	mCascadeDepth = obs.Default().Histogram("gis_active_cascade_depth",
		[]float64{1, 2, 4, 8, 16})
)

// Errors returned by the engine.
var (
	ErrBadRule        = errors.New("active: invalid rule")
	ErrDuplicateRule  = errors.New("active: duplicate rule name")
	ErrUnknownRule    = errors.New("active: unknown rule")
	ErrCascadeLimit   = errors.New("active: cascade depth limit exceeded")
	ErrUndeclaredEmit = errors.New("active: emission not declared in the rule's Emits")
)

// Family partitions the rule set, as §3.3 suggests ("the rule set may be
// partitioned into (at least) two subsets: rules for interface
// customization, and other rules").
type Family uint8

// Rule families.
const (
	// FamilyCustomization rules select presentation directives; one per
	// event, most specific wins.
	FamilyCustomization Family = iota + 1
	// FamilyConstraint rules guard mutations (topological integrity);
	// all matches run and any error vetoes.
	FamilyConstraint
	// FamilyReaction rules are generic ECA reactions (logging, derived
	// updates, view refresh à la Diaz et al.); all matches run.
	FamilyReaction
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilyCustomization:
		return "customization"
	case FamilyConstraint:
		return "constraint"
	case FamilyReaction:
		return "reaction"
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// CustomizationAction computes the customization a rule delivers. It must
// not mutate the database or emit events (the engine does not hand it the
// emit capability, enforcing the paper's no-cascade property structurally).
type CustomizationAction func(e event.Event) (spec.Customization, error)

// ReactionAction reacts to an event. The Emitter lets it cascade — emit
// follow-up events through the engine, which tracks depth.
type ReactionAction func(e event.Event, em Emitter) error

// Emitter re-enters the engine from inside a reaction rule.
type Emitter interface {
	// EmitNested dispatches a follow-up event at the current cascade
	// depth + 1.
	EmitNested(e event.Event) error
}

// Rule is an ECA rule.
type Rule struct {
	// Name uniquely identifies the rule.
	Name string
	// Family selects execution semantics.
	Family Family
	// On is the triggering event kind.
	On event.Kind
	// Schema/Class/Attr scope the rule; empty components are wildcards.
	Schema, Class, Attr string
	// Context is the condition: the context pattern that must cover the
	// event's context.
	Context event.Context
	// When is an optional extra predicate over the event (nil = true).
	When func(event.Event) bool
	// Priority breaks specificity ties; higher wins. The compiler fills
	// it from the directive's optional priority clause (zero by default);
	// hand-written rules may use it. Full ties (equal specificity and
	// priority) break deterministically by rule name.
	Priority int
	// Emits declares the event patterns the React action may emit through
	// its Emitter. The engine ENFORCES the declaration: an emission not
	// covered by Emits fails with ErrUndeclaredEmit, so nil means "emits
	// nothing". The static analyzer (ruleanalysis, Engine.CheckSet) builds
	// the rule-triggering graph from these declarations — termination
	// analysis is only as sound as the declarations, which is why they are
	// enforced rather than advisory. Customization rules must leave Emits
	// nil: they never receive an Emitter (the paper's no-cascade property,
	// enforced structurally).
	Emits []event.Pattern
	// Src optionally records where the rule came from (the custlang
	// compiler threads the source clause's position here); static-analysis
	// diagnostics carry it.
	Src ruleanalysis.Position
	// Customize is the action for FamilyCustomization rules.
	Customize CustomizationAction
	// React is the action for FamilyConstraint and FamilyReaction rules.
	React ReactionAction
}

// matches reports whether the rule's event pattern and condition cover e.
func (r *Rule) matches(e event.Event) bool {
	if r.On != e.Kind {
		return false
	}
	if r.Schema != "" && r.Schema != e.Schema {
		return false
	}
	if r.Class != "" && r.Class != e.Class {
		return false
	}
	if r.Attr != "" && r.Attr != e.Attr {
		return false
	}
	if !r.Context.Matches(e.Ctx) {
		return false
	}
	if r.When != nil && !r.When(e) {
		return false
	}
	return true
}

// specificity orders customization rules: context specificity first, then
// event-scope narrowness, then Priority. It delegates to the shared scoring
// in ruleanalysis so the static analyzer can never drift from the
// dispatcher.
func (r *Rule) specificity() int {
	return ruleanalysis.Specificity(r.Context, r.Schema, r.Class, r.Attr)
}

// beats reports whether a wins the customization selection contest against
// b: higher specificity, then higher priority, then — so selection is
// deterministic regardless of insertion order or Indexed mode — the
// lexicographically smaller name.
func beats(a, b *Rule) bool {
	sa, sb := a.specificity(), b.specificity()
	if sa != sb {
		return sa > sb
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Name < b.Name
}

// emitDeclared reports whether the rule's Emits declaration covers e.
func (r *Rule) emitDeclared(e event.Event) bool {
	for _, p := range r.Emits {
		if p.Matches(e) {
			return true
		}
	}
	return false
}

// analysisInfo converts the rule to its statically analyzable shape.
func (r *Rule) analysisInfo() ruleanalysis.RuleInfo {
	return ruleanalysis.RuleInfo{
		Name:     r.Name,
		Family:   r.Family.String(),
		On:       r.On,
		Schema:   r.Schema,
		Class:    r.Class,
		Attr:     r.Attr,
		Context:  r.Context,
		Priority: r.Priority,
		HasWhen:  r.When != nil,
		Emits:    append([]event.Pattern(nil), r.Emits...),
		Pos:      r.Src,
	}
}

// Stats counts engine activity.
type Stats struct {
	// Events is the number of events inspected.
	Events uint64
	// Evaluated counts rule match tests performed (the B1 ablation
	// contrasts indexed vs. linear lookup through this counter).
	Evaluated uint64
	// Fired counts actions executed (all families).
	Fired uint64
	// Selected counts customization selections delivered.
	Selected uint64
	// Suppressed counts matching customization rules that lost the
	// specificity contest.
	Suppressed uint64
}

// engineStats is the live, lock-free form of Stats: dispatch updates these
// with atomic adds so the hot path never takes the engine mutex just to
// count.
type engineStats struct {
	events, evaluated, fired, selected, suppressed atomic.Uint64
}

// DefaultMaxCascade bounds reaction-rule cascades.
const DefaultMaxCascade = 16

// Engine is the active mechanism. Subscribe it to a database bus with
// db.Bus().Subscribe(engine); it is safe for concurrent use.
type Engine struct {
	mu    sync.RWMutex
	rules map[string]*Rule
	// byKindUser is the two-level rule index: rules keyed by triggering
	// event kind plus the user their context pins (empty for rules whose
	// context does not name a user). Lookup unions the event's user bucket
	// with the wildcard bucket, so with U distinct users the per-event
	// candidate set shrinks by ~U versus the linear scan (B1 ablates
	// this against `all`).
	byKindUser map[kindUser][]*Rule
	all        []*Rule
	stats      engineStats
	tracer     obs.Tracer

	// pending holds the customization selected for the most recent event
	// with a given identity; the UI dispatcher pops it right after the
	// database primitive returns (dispatch is synchronous, so the entry is
	// present by then). Keyed by the full event identity including context,
	// so concurrent sessions do not collide.
	pending map[string]spec.Customization

	// Indexed selects the (event kind)-indexed rule lookup; when false the
	// engine scans every rule (the naïve baseline B1 measures against).
	Indexed bool
	// SelectAll is the ablation of the paper's execution model: when true,
	// EVERY matching customization rule fires, in ascending specificity
	// order, each overwriting the previous selection. The final
	// customization equals the single-select result (most specific last),
	// but every action runs — the cost the paper's "only one rule is
	// selected" avoids, and a semantic hazard if actions had side effects.
	SelectAll bool
	// MaxCascade bounds nested reaction emissions.
	MaxCascade int
	// Trace, when non-nil, receives a line per engine decision (experiment
	// F1 renders these). It is the legacy string hook, kept as a
	// compatibility shim over the structured span layer: the engine emits
	// the same decisions as spans through Tracer(), and additionally
	// formats them into lines when Trace is set. Prefer AttachSpans.
	Trace func(string)
}

// Tracer exposes the engine's span tracer; attach an obs.SpanRecorder to
// capture structured dispatch/fire/select spans. With no recorder attached
// the span path costs one atomic load per dispatch and allocates nothing.
func (en *Engine) Tracer() *obs.Tracer { return &en.tracer }

// AttachSpans directs the engine's structured trace spans into rec (nil
// detaches). It replaces the string Trace hook for programmatic consumers.
func (en *Engine) AttachSpans(rec *obs.SpanRecorder) { en.tracer.Attach(rec) }

// kindUser is the two-level index key.
type kindUser struct {
	kind event.Kind
	user string
}

func indexKey(r *Rule) kindUser {
	return kindUser{kind: r.On, user: r.Context.User}
}

// NewEngine returns an engine with indexed lookup and the default cascade
// bound.
func NewEngine() *Engine {
	return &Engine{
		rules:      make(map[string]*Rule),
		byKindUser: make(map[kindUser][]*Rule),
		pending:    make(map[string]spec.Customization),
		Indexed:    true,
		MaxCascade: DefaultMaxCascade,
	}
}

// AddRule validates and installs a rule.
func (en *Engine) AddRule(r Rule) error {
	if r.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadRule)
	}
	if r.On == 0 {
		return fmt.Errorf("%w: rule %q has no triggering event", ErrBadRule, r.Name)
	}
	switch r.Family {
	case FamilyCustomization:
		if r.Customize == nil {
			return fmt.Errorf("%w: customization rule %q has no Customize action", ErrBadRule, r.Name)
		}
		if r.React != nil {
			return fmt.Errorf("%w: customization rule %q must not have a React action", ErrBadRule, r.Name)
		}
		if len(r.Emits) > 0 {
			return fmt.Errorf("%w: customization rule %q cannot emit events (no Emitter is ever handed to it)", ErrBadRule, r.Name)
		}
	case FamilyConstraint, FamilyReaction:
		if r.React == nil {
			return fmt.Errorf("%w: %s rule %q has no React action", ErrBadRule, r.Family, r.Name)
		}
		if r.Customize != nil {
			return fmt.Errorf("%w: %s rule %q must not have a Customize action", ErrBadRule, r.Family, r.Name)
		}
	default:
		return fmt.Errorf("%w: rule %q has unknown family", ErrBadRule, r.Name)
	}
	en.mu.Lock()
	defer en.mu.Unlock()
	if _, ok := en.rules[r.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateRule, r.Name)
	}
	stored := r
	en.rules[r.Name] = &stored
	en.all = append(en.all, &stored)
	key := indexKey(&stored)
	en.byKindUser[key] = append(en.byKindUser[key], &stored)
	return nil
}

// RemoveRule uninstalls a rule by name.
func (en *Engine) RemoveRule(name string) error {
	en.mu.Lock()
	defer en.mu.Unlock()
	r, ok := en.rules[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
	delete(en.rules, name)
	en.all = removeRule(en.all, r)
	key := indexKey(r)
	en.byKindUser[key] = removeRule(en.byKindUser[key], r)
	return nil
}

func removeRule(rs []*Rule, target *Rule) []*Rule {
	for i, r := range rs {
		if r == target {
			return append(rs[:i], rs[i+1:]...)
		}
	}
	return rs
}

// Rules lists installed rule names in sorted order.
func (en *Engine) Rules() []string {
	en.mu.RLock()
	defer en.mu.RUnlock()
	out := make([]string, 0, len(en.rules))
	for name := range en.rules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RuleCount reports the number of installed rules.
func (en *Engine) RuleCount() int {
	en.mu.RLock()
	defer en.mu.RUnlock()
	return len(en.rules)
}

// Stats returns a snapshot of the engine counters.
func (en *Engine) Stats() Stats {
	return Stats{
		Events:     en.stats.events.Load(),
		Evaluated:  en.stats.evaluated.Load(),
		Fired:      en.stats.fired.Load(),
		Selected:   en.stats.selected.Load(),
		Suppressed: en.stats.suppressed.Load(),
	}
}

// ResetStats zeroes the counters (benchmarks use this between phases).
func (en *Engine) ResetStats() {
	en.stats.events.Store(0)
	en.stats.evaluated.Store(0)
	en.stats.fired.Store(0)
	en.stats.selected.Store(0)
	en.stats.suppressed.Store(0)
}

// HandleEvent implements event.Handler; it is the bus-facing entry point.
func (en *Engine) HandleEvent(e event.Event) error {
	return en.dispatch(e, 0)
}

type nestedEmitter struct {
	en    *Engine
	depth int
	// rule is the reaction rule the emitter was handed to; emissions are
	// checked against its Emits declaration so the static triggering
	// graph (Engine.CheckSet) stays sound.
	rule *Rule
}

func (ne nestedEmitter) EmitNested(e event.Event) error {
	if !ne.rule.emitDeclared(e) {
		return fmt.Errorf("%w: rule %q emitted [%s]", ErrUndeclaredEmit, ne.rule.Name, e)
	}
	return ne.en.dispatch(e, ne.depth+1)
}

func (en *Engine) dispatch(e event.Event, depth int) error {
	if depth > en.MaxCascade {
		return fmt.Errorf("%w: depth %d on %s", ErrCascadeLimit, depth, e)
	}
	if depth > 0 {
		mCascadeDepth.Observe(float64(depth))
	}
	sp := en.tracer.Start("active.dispatch")
	if sp != nil {
		sp.Set("event", e.Kind.String()).Set("ctx", e.Ctx.String())
		if e.Class != "" {
			sp.Set("class", e.Class)
		}
		if depth > 0 {
			sp.Setf("depth", "%d", depth)
		}
		defer sp.Finish()
	}
	// Snapshot candidates under the read lock, then evaluate predicates
	// outside it: rule conditions are caller code and must not observe the
	// engine lock held.
	en.mu.RLock()
	var candidates []*Rule
	if en.Indexed {
		candidates = append(candidates, en.byKindUser[kindUser{e.Kind, e.Ctx.User}]...)
		if e.Ctx.User != "" {
			// Rules whose context does not pin a user match any user.
			candidates = append(candidates, en.byKindUser[kindUser{e.Kind, ""}]...)
		}
	} else {
		candidates = append(candidates, en.all...)
	}
	en.mu.RUnlock()

	var best *Rule
	var matchedCust []*Rule
	var others []*Rule
	var evaluated, suppressed uint64
	for _, r := range candidates {
		evaluated++
		if !r.matches(e) {
			continue
		}
		if r.Family == FamilyCustomization {
			matchedCust = append(matchedCust, r)
			if best == nil || beats(r, best) {
				if best != nil {
					suppressed++
				}
				best = r
			} else {
				suppressed++
			}
		} else {
			others = append(others, r)
		}
	}
	en.stats.events.Add(1)
	en.stats.evaluated.Add(evaluated)
	en.stats.suppressed.Add(suppressed)
	mEvents.Inc()
	mEvaluated.Add(evaluated)
	mSuppressed.Add(suppressed)
	if sp != nil {
		sp.Setf("candidates", "%d", len(candidates))
	}

	// Constraint and reaction rules run for every match, constraints first
	// (a veto must precede side effects).
	sort.SliceStable(others, func(i, j int) bool {
		if others[i].Family != others[j].Family {
			return others[i].Family == FamilyConstraint
		}
		return others[i].Priority > others[j].Priority
	})
	for _, r := range others {
		en.trace("fire %s rule %q on %s", r.Family, r.Name, e.Kind)
		en.countFired()
		fsp := sp.Child("rule.fire")
		fsp.Set("rule", r.Name).Set("family", r.Family.String())
		sw := obs.Start(mFireSeconds)
		err := r.React(e, nestedEmitter{en: en, depth: depth, rule: r})
		sw.Stop()
		fsp.Finish()
		if err != nil {
			return fmt.Errorf("rule %q: %w", r.Name, err)
		}
	}
	if en.SelectAll && len(matchedCust) > 0 {
		// Ablation path: fire every match, least specific first, so the
		// most specific customization lands last in the pending slot —
		// ordered by the same contest dispatch uses, winner last.
		sort.SliceStable(matchedCust, func(i, j int) bool {
			return beats(matchedCust[j], matchedCust[i])
		})
		for _, r := range matchedCust {
			en.trace("fire-all customization rule %q for %s", r.Name, e.Kind)
			en.countFired()
			sw := obs.Start(mFireSeconds)
			cust, err := r.Customize(e)
			sw.Stop()
			if err != nil {
				return fmt.Errorf("customization rule %q: %w", r.Name, err)
			}
			if cust.Origin == "" {
				cust.Origin = r.Name
			}
			en.stats.selected.Add(1)
			mSelected.Inc()
			en.mu.Lock()
			en.pending[eventKey(e)] = cust
			en.mu.Unlock()
		}
		return nil
	}
	if best != nil {
		en.trace("select customization rule %q (specificity %d) for %s in %s",
			best.Name, best.specificity(), e.Kind, e.Ctx)
		en.countFired()
		mSpecificity.Observe(float64(best.specificity()))
		if sp != nil {
			sp.Set("selected", best.Name).Setf("specificity", "%d", best.specificity())
		}
		sw := obs.Start(mFireSeconds)
		cust, err := best.Customize(e)
		sw.Stop()
		if err != nil {
			return fmt.Errorf("customization rule %q: %w", best.Name, err)
		}
		if cust.Origin == "" {
			cust.Origin = best.Name
		}
		en.stats.selected.Add(1)
		mSelected.Inc()
		en.mu.Lock()
		en.pending[eventKey(e)] = cust
		en.mu.Unlock()
	}
	return nil
}

func (en *Engine) countFired() {
	en.stats.fired.Add(1)
	mFired.Inc()
}

func (en *Engine) trace(format string, args ...any) {
	if en.Trace != nil {
		en.Trace(fmt.Sprintf(format, args...))
	}
}

// eventKey identifies an event for the pending-customization hand-off.
func eventKey(e event.Event) string {
	return fmt.Sprintf("%d|%s|%s|%s|%d|%s|%s|%s",
		e.Kind, e.Schema, e.Class, e.Attr, e.OID,
		e.Ctx.User, e.Ctx.Category, e.Ctx.Application)
}

// TakeCustomization pops the customization selected for the given event, if
// a rule fired for it. The UI dispatcher calls this immediately after the
// database primitive that emitted the event returns; because the bus is
// synchronous, selection has already happened on the same goroutine.
func (en *Engine) TakeCustomization(e event.Event) (spec.Customization, bool) {
	key := eventKey(e)
	en.mu.Lock()
	defer en.mu.Unlock()
	c, ok := en.pending[key]
	if ok {
		delete(en.pending, key)
	}
	return c, ok
}

// PendingCount reports undelivered customizations (should be 0 between
// interactions; tests assert no leaks).
func (en *Engine) PendingCount() int {
	en.mu.RLock()
	defer en.mu.RUnlock()
	return len(en.pending)
}

// RuleInfos snapshots the installed rules in their statically analyzable
// shape, sorted by name.
func (en *Engine) RuleInfos() []ruleanalysis.RuleInfo {
	en.mu.RLock()
	infos := make([]ruleanalysis.RuleInfo, 0, len(en.all))
	for _, r := range en.all {
		infos = append(infos, r.analysisInfo())
	}
	en.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// CheckSet statically analyzes the installed rule set: triggering-graph
// cycles (non-termination), ambiguous customization pairs, and shadowed
// (dead) rules. It is the engine-level entry point of the gislint checks;
// the custlang compiler's strict Install and cmd/gislint both run it.
func (en *Engine) CheckSet() []ruleanalysis.Finding {
	return ruleanalysis.CheckRules(en.RuleInfos())
}
