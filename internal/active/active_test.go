package active

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/spec"
)

func custRule(name string, ctx event.Context, display spec.SchemaDisplay) Rule {
	return Rule{
		Name:    name,
		Family:  FamilyCustomization,
		On:      event.GetSchema,
		Context: ctx,
		Customize: func(e event.Event) (spec.Customization, error) {
			return spec.Customization{
				Level:  spec.LevelSchema,
				Schema: spec.SchemaCust{Schema: e.Schema, Display: display},
			}, nil
		},
	}
}

func TestAddRuleValidation(t *testing.T) {
	en := NewEngine()
	bad := []Rule{
		{},
		{Name: "x"},
		{Name: "x", On: event.GetSchema},
		{Name: "x", On: event.GetSchema, Family: FamilyCustomization},                                      // no action
		{Name: "x", On: event.GetSchema, Family: FamilyReaction},                                           // no action
		{Name: "x", On: event.GetSchema, Family: Family(99), Customize: nilCust, React: nil},               // bad family
		{Name: "x", On: event.GetSchema, Family: FamilyCustomization, Customize: nilCust, React: nilReact}, // both
		{Name: "x", On: event.GetSchema, Family: FamilyReaction, Customize: nilCust, React: nilReact},      // both
	}
	for i, r := range bad {
		if err := en.AddRule(r); !errors.Is(err, ErrBadRule) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	good := custRule("r1", event.Context{}, spec.DisplayDefault)
	if err := en.AddRule(good); err != nil {
		t.Fatal(err)
	}
	if err := en.AddRule(good); !errors.Is(err, ErrDuplicateRule) {
		t.Fatalf("duplicate: %v", err)
	}
	if en.RuleCount() != 1 {
		t.Fatalf("count = %d", en.RuleCount())
	}
}

func nilCust(event.Event) (spec.Customization, error) { return spec.Customization{}, nil }
func nilReact(event.Event, Emitter) error             { return nil }

func TestRemoveRule(t *testing.T) {
	en := NewEngine()
	en.AddRule(custRule("r1", event.Context{}, spec.DisplayDefault))
	en.AddRule(custRule("r2", event.Context{}, spec.DisplayDefault))
	if err := en.RemoveRule("r1"); err != nil {
		t.Fatal(err)
	}
	if err := en.RemoveRule("r1"); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("double remove: %v", err)
	}
	if got := en.Rules(); len(got) != 1 || got[0] != "r2" {
		t.Fatalf("rules = %v", got)
	}
	// Removed rule never fires.
	e := event.Event{Kind: event.GetSchema, Schema: "s"}
	if err := en.HandleEvent(e); err != nil {
		t.Fatal(err)
	}
	if c, ok := en.TakeCustomization(e); !ok || c.Origin != "r2" {
		t.Fatalf("customization = %+v, %v", c, ok)
	}
}

func TestMostSpecificRuleWins(t *testing.T) {
	en := NewEngine()
	// Paper §3.3: "a rule for generic users, for a particular category of
	// users, and for a particular user within the category" — most
	// restrictive context wins.
	en.AddRule(custRule("generic", event.Context{Application: "pole_manager"}, spec.DisplayDefault))
	en.AddRule(custRule("category", event.Context{Category: "planners", Application: "pole_manager"}, spec.DisplayHierarchy))
	en.AddRule(custRule("user", event.Context{User: "juliano", Application: "pole_manager"}, spec.DisplayNull))

	cases := []struct {
		ctx  event.Context
		want spec.SchemaDisplay
		rule string
	}{
		{event.Context{User: "maria", Application: "pole_manager"}, spec.DisplayDefault, "generic"},
		{event.Context{User: "maria", Category: "planners", Application: "pole_manager"}, spec.DisplayHierarchy, "category"},
		{event.Context{User: "juliano", Category: "planners", Application: "pole_manager"}, spec.DisplayNull, "user"},
	}
	for i, c := range cases {
		e := event.Event{Kind: event.GetSchema, Schema: "phone_net", Ctx: c.ctx}
		if err := en.HandleEvent(e); err != nil {
			t.Fatal(err)
		}
		got, ok := en.TakeCustomization(e)
		if !ok {
			t.Fatalf("case %d: no customization", i)
		}
		if got.Schema.Display != c.want || got.Origin != c.rule {
			t.Errorf("case %d: display=%v origin=%q, want %v %q",
				i, got.Schema.Display, got.Origin, c.want, c.rule)
		}
	}
	st := en.Stats()
	if st.Selected != 3 {
		t.Fatalf("selected = %d", st.Selected)
	}
	if st.Suppressed == 0 {
		t.Fatal("losing rules must be counted suppressed")
	}
	if en.PendingCount() != 0 {
		t.Fatal("pending leak")
	}
}

func TestNoMatchNoCustomization(t *testing.T) {
	en := NewEngine()
	en.AddRule(custRule("r", event.Context{User: "juliano"}, spec.DisplayNull))
	e := event.Event{Kind: event.GetSchema, Ctx: event.Context{User: "maria"}}
	if err := en.HandleEvent(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := en.TakeCustomization(e); ok {
		t.Fatal("customization for non-matching context")
	}
}

func TestScopeFiltering(t *testing.T) {
	en := NewEngine()
	r := custRule("pole-only", event.Context{}, spec.DisplayNull)
	r.On = event.GetClass
	r.Schema = "phone_net"
	r.Class = "Pole"
	en.AddRule(r)
	hit := event.Event{Kind: event.GetClass, Schema: "phone_net", Class: "Pole"}
	miss := event.Event{Kind: event.GetClass, Schema: "phone_net", Class: "Duct"}
	en.HandleEvent(hit)
	if _, ok := en.TakeCustomization(hit); !ok {
		t.Fatal("scoped rule should fire for its class")
	}
	en.HandleEvent(miss)
	if _, ok := en.TakeCustomization(miss); ok {
		t.Fatal("scoped rule fired for wrong class")
	}
}

func TestWhenPredicate(t *testing.T) {
	en := NewEngine()
	r := custRule("conditional", event.Context{}, spec.DisplayNull)
	r.When = func(e event.Event) bool { return e.OID%2 == 0 }
	r.On = event.GetValue
	en.AddRule(r)
	even := event.Event{Kind: event.GetValue, OID: 4}
	odd := event.Event{Kind: event.GetValue, OID: 3}
	en.HandleEvent(even)
	if _, ok := en.TakeCustomization(even); !ok {
		t.Fatal("even OID should match")
	}
	en.HandleEvent(odd)
	if _, ok := en.TakeCustomization(odd); ok {
		t.Fatal("odd OID should not match")
	}
}

func TestConstraintVeto(t *testing.T) {
	en := NewEngine()
	violation := errors.New("poles must not overlap")
	en.AddRule(Rule{
		Name:   "no-overlap",
		Family: FamilyConstraint,
		On:     event.PreInsert,
		Class:  "Pole",
		React: func(e event.Event, em Emitter) error {
			return violation
		},
	})
	err := en.HandleEvent(event.Event{Kind: event.PreInsert, Class: "Pole"})
	if !errors.Is(err, violation) {
		t.Fatalf("veto not propagated: %v", err)
	}
	if err := en.HandleEvent(event.Event{Kind: event.PreInsert, Class: "Duct"}); err != nil {
		t.Fatalf("unrelated class vetoed: %v", err)
	}
}

func TestConstraintsRunBeforeReactions(t *testing.T) {
	en := NewEngine()
	var order []string
	en.AddRule(Rule{
		Name: "react", Family: FamilyReaction, On: event.PreUpdate,
		React: func(e event.Event, em Emitter) error {
			order = append(order, "reaction")
			return nil
		},
	})
	en.AddRule(Rule{
		Name: "guard", Family: FamilyConstraint, On: event.PreUpdate,
		React: func(e event.Event, em Emitter) error {
			order = append(order, "constraint")
			return nil
		},
	})
	if err := en.HandleEvent(event.Event{Kind: event.PreUpdate}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "constraint" {
		t.Fatalf("order = %v", order)
	}
}

func TestReactionCascade(t *testing.T) {
	en := NewEngine()
	var seen []string
	en.AddRule(Rule{
		Name: "onInsert", Family: FamilyReaction, On: event.PostInsert,
		Emits: []event.Pattern{{Kind: event.External, Name: "audit"}},
		React: func(e event.Event, em Emitter) error {
			seen = append(seen, "insert")
			return em.EmitNested(event.Event{Kind: event.External, Name: "audit"})
		},
	})
	en.AddRule(Rule{
		Name: "onAudit", Family: FamilyReaction, On: event.External,
		React: func(e event.Event, em Emitter) error {
			seen = append(seen, "audit:"+e.Name)
			return nil
		},
	})
	if err := en.HandleEvent(event.Event{Kind: event.PostInsert}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[1] != "audit:audit" {
		t.Fatalf("cascade = %v", seen)
	}
}

func TestCascadeDepthLimit(t *testing.T) {
	en := NewEngine()
	en.MaxCascade = 5
	en.AddRule(Rule{
		Name: "loop", Family: FamilyReaction, On: event.External,
		Emits: []event.Pattern{{Kind: event.External}},
		React: func(e event.Event, em Emitter) error {
			return em.EmitNested(e) // infinite self-trigger
		},
	})
	err := en.HandleEvent(event.Event{Kind: event.External, Name: "boom"})
	if !errors.Is(err, ErrCascadeLimit) {
		t.Fatalf("runaway cascade not caught: %v", err)
	}
	// The static analyzer sees the same loop before any event fires: the
	// declared self-emission is a triggering-graph cycle.
	findings := en.CheckSet()
	if len(findings) != 2 || findings[0].Check != "cycle" || findings[1].Check != "dead-rule" {
		t.Fatalf("CheckSet = %+v, want a cycle and a dead-rule finding", findings)
	}
	if len(findings[0].Rules) != 2 || findings[0].Rules[0] != "loop" || findings[0].Rules[1] != "loop" {
		t.Fatalf("cycle path = %v", findings[0].Rules)
	}
}

func TestUndeclaredEmissionRejected(t *testing.T) {
	en := NewEngine()
	en.AddRule(Rule{
		Name: "sneaky", Family: FamilyReaction, On: event.PostInsert,
		Emits: []event.Pattern{{Kind: event.External, Name: "audit"}},
		React: func(e event.Event, em Emitter) error {
			return em.EmitNested(event.Event{Kind: event.PostUpdate}) // not declared
		},
	})
	err := en.HandleEvent(event.Event{Kind: event.PostInsert})
	if !errors.Is(err, ErrUndeclaredEmit) {
		t.Fatalf("undeclared emission not rejected: %v", err)
	}
	// A rule with nil Emits declares "emits nothing".
	en2 := NewEngine()
	en2.AddRule(Rule{
		Name: "silent", Family: FamilyReaction, On: event.PostInsert,
		React: func(e event.Event, em Emitter) error {
			return em.EmitNested(event.Event{Kind: event.External})
		},
	})
	if err := en2.HandleEvent(event.Event{Kind: event.PostInsert}); !errors.Is(err, ErrUndeclaredEmit) {
		t.Fatalf("nil-Emits emission not rejected: %v", err)
	}
}

func TestCustomizationRuleCannotDeclareEmits(t *testing.T) {
	en := NewEngine()
	r := custRule("c", event.Context{}, spec.DisplayDefault)
	r.Emits = []event.Pattern{{Kind: event.External}}
	if err := en.AddRule(r); !errors.Is(err, ErrBadRule) {
		t.Fatalf("customization rule with Emits accepted: %v", err)
	}
}

func TestIndexedVsLinearSameResults(t *testing.T) {
	build := func(indexed bool) *Engine {
		en := NewEngine()
		en.Indexed = indexed
		for i := 0; i < 50; i++ {
			r := custRule(fmt.Sprintf("r%d", i), event.Context{User: fmt.Sprintf("u%d", i)}, spec.DisplayNull)
			if i%2 == 0 {
				r.On = event.GetClass
			}
			en.AddRule(r)
		}
		return en
	}
	for _, e := range []event.Event{
		{Kind: event.GetSchema, Ctx: event.Context{User: "u1"}},
		{Kind: event.GetClass, Ctx: event.Context{User: "u2"}},
		{Kind: event.GetValue, Ctx: event.Context{User: "u3"}},
	} {
		a, b := build(true), build(false)
		a.HandleEvent(e)
		b.HandleEvent(e)
		ca, oka := a.TakeCustomization(e)
		cb, okb := b.TakeCustomization(e)
		if oka != okb || ca.Origin != cb.Origin {
			t.Fatalf("indexed/linear diverge on %s: %v/%v %q/%q", e, oka, okb, ca.Origin, cb.Origin)
		}
		// Indexed evaluates fewer rules.
		if a.Stats().Evaluated >= b.Stats().Evaluated {
			t.Fatalf("indexed evaluated %d, linear %d", a.Stats().Evaluated, b.Stats().Evaluated)
		}
	}
}

func TestPriorityTiebreak(t *testing.T) {
	en := NewEngine()
	r1 := custRule("low", event.Context{User: "u"}, spec.DisplayDefault)
	r1.Priority = 1
	r2 := custRule("high", event.Context{User: "u"}, spec.DisplayHierarchy)
	r2.Priority = 2
	en.AddRule(r1)
	en.AddRule(r2)
	e := event.Event{Kind: event.GetSchema, Ctx: event.Context{User: "u"}}
	en.HandleEvent(e)
	c, ok := en.TakeCustomization(e)
	if !ok || c.Origin != "high" {
		t.Fatalf("tiebreak winner = %q", c.Origin)
	}
}

func TestEventScopeSpecificityBreaksContextTies(t *testing.T) {
	en := NewEngine()
	broad := custRule("broad", event.Context{User: "u"}, spec.DisplayDefault)
	broad.On = event.GetClass
	narrow := custRule("narrow", event.Context{User: "u"}, spec.DisplayNull)
	narrow.On = event.GetClass
	narrow.Schema = "phone_net"
	narrow.Class = "Pole"
	en.AddRule(broad)
	en.AddRule(narrow)
	e := event.Event{Kind: event.GetClass, Schema: "phone_net", Class: "Pole", Ctx: event.Context{User: "u"}}
	en.HandleEvent(e)
	if c, _ := en.TakeCustomization(e); c.Origin != "narrow" {
		t.Fatalf("winner = %q, want narrow (class-scoped)", c.Origin)
	}
}

func TestCustomizationActionError(t *testing.T) {
	en := NewEngine()
	boom := errors.New("library object missing")
	en.AddRule(Rule{
		Name: "bad", Family: FamilyCustomization, On: event.GetSchema,
		Customize: func(e event.Event) (spec.Customization, error) {
			return spec.Customization{}, boom
		},
	})
	err := en.HandleEvent(event.Event{Kind: event.GetSchema})
	if !errors.Is(err, boom) {
		t.Fatalf("action error: %v", err)
	}
}

func TestTrace(t *testing.T) {
	en := NewEngine()
	var lines []string
	en.Trace = func(s string) { lines = append(lines, s) }
	en.AddRule(custRule("r", event.Context{}, spec.DisplayNull))
	en.AddRule(Rule{
		Name: "log", Family: FamilyReaction, On: event.GetSchema,
		React: func(event.Event, Emitter) error { return nil },
	})
	e := event.Event{Kind: event.GetSchema, Schema: "s"}
	en.HandleEvent(e)
	en.TakeCustomization(e)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "select customization rule") || !strings.Contains(joined, "fire reaction rule") {
		t.Fatalf("trace = %q", joined)
	}
}

func TestDispatchSpans(t *testing.T) {
	en := NewEngine()
	rec := obs.NewSpanRecorder(16)
	en.AttachSpans(rec)
	en.AddRule(custRule("r", event.Context{}, spec.DisplayNull))
	en.AddRule(Rule{
		Name: "log", Family: FamilyReaction, On: event.GetSchema,
		React: func(event.Event, Emitter) error { return nil },
	})
	e := event.Event{Kind: event.GetSchema, Schema: "s"}
	if err := en.HandleEvent(e); err != nil {
		t.Fatal(err)
	}
	en.TakeCustomization(e)
	spans := rec.Spans()
	var dispatch, fire *obs.Span
	for i := range spans {
		switch spans[i].Name {
		case "active.dispatch":
			dispatch = &spans[i]
		case "rule.fire":
			fire = &spans[i]
		}
	}
	if dispatch == nil || fire == nil {
		t.Fatalf("spans = %+v", spans)
	}
	if fire.Parent != dispatch.ID {
		t.Errorf("rule.fire parent = %d, want dispatch ID %d", fire.Parent, dispatch.ID)
	}
	attrs := map[string]string{}
	for _, a := range dispatch.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["event"] != "Get_Schema" || attrs["selected"] != "r" {
		t.Errorf("dispatch attrs = %v", attrs)
	}
	// Detaching disables the span path again.
	en.AttachSpans(nil)
	if err := en.HandleEvent(e); err != nil {
		t.Fatal(err)
	}
	en.TakeCustomization(e)
	if rec.Total() != uint64(len(spans)) {
		t.Error("spans recorded after detach")
	}
}

func TestStatsCounters(t *testing.T) {
	en := NewEngine()
	en.AddRule(custRule("a", event.Context{}, spec.DisplayDefault))
	e := event.Event{Kind: event.GetSchema}
	for i := 0; i < 10; i++ {
		en.HandleEvent(e)
		en.TakeCustomization(e)
	}
	st := en.Stats()
	if st.Events != 10 || st.Fired != 10 || st.Selected != 10 {
		t.Fatalf("stats = %+v", st)
	}
	en.ResetStats()
	if en.Stats().Events != 0 {
		t.Fatal("reset failed")
	}
}

func TestPaperSection4Rules(t *testing.T) {
	// Reproduce R1 and R2 of Section 4 hand-written (the compiler test in
	// custlang produces them from the Figure 6 script).
	en := NewEngine()
	ctx := event.Context{User: "juliano", Application: "pole_manager"}
	en.AddRule(Rule{
		Name: "R1", Family: FamilyCustomization, On: event.GetSchema,
		Schema: "phone_net", Context: ctx,
		Customize: func(e event.Event) (spec.Customization, error) {
			return spec.Customization{
				Level: spec.LevelSchema,
				Schema: spec.SchemaCust{
					Schema: "phone_net", Display: spec.DisplayNull, Classes: []string{"Pole"},
				},
			}, nil
		},
	})
	en.AddRule(Rule{
		Name: "R2", Family: FamilyCustomization, On: event.GetClass,
		Schema: "phone_net", Class: "Pole", Context: ctx,
		Customize: func(e event.Event) (spec.Customization, error) {
			return spec.Customization{
				Level: spec.LevelClass,
				Class: spec.ClassCust{Class: "Pole", Control: "poleWidget", Presentation: "pointFormat"},
			}, nil
		},
	})
	eSchema := event.Event{Kind: event.GetSchema, Schema: "phone_net", Ctx: ctx}
	en.HandleEvent(eSchema)
	c1, ok := en.TakeCustomization(eSchema)
	if !ok || c1.Schema.Display != spec.DisplayNull || len(c1.Schema.Classes) != 1 {
		t.Fatalf("R1 = %+v, %v", c1, ok)
	}
	eClass := event.Event{Kind: event.GetClass, Schema: "phone_net", Class: "Pole", Ctx: ctx}
	en.HandleEvent(eClass)
	c2, ok := en.TakeCustomization(eClass)
	if !ok || c2.Class.Control != "poleWidget" || c2.Class.Presentation != "pointFormat" {
		t.Fatalf("R2 = %+v, %v", c2, ok)
	}
	// A different user gets no customization — the generic default.
	other := event.Event{Kind: event.GetSchema, Schema: "phone_net",
		Ctx: event.Context{User: "maria", Application: "pole_manager"}}
	en.HandleEvent(other)
	if _, ok := en.TakeCustomization(other); ok {
		t.Fatal("R1 must not fire for another user")
	}
}

func TestSelectAllAblation(t *testing.T) {
	build := func(selectAll bool) *Engine {
		en := NewEngine()
		en.SelectAll = selectAll
		en.AddRule(custRule("generic", event.Context{Application: "app"}, spec.DisplayDefault))
		en.AddRule(custRule("category", event.Context{Category: "c", Application: "app"}, spec.DisplayHierarchy))
		en.AddRule(custRule("user", event.Context{User: "u", Application: "app"}, spec.DisplayNull))
		return en
	}
	e := event.Event{Kind: event.GetSchema,
		Ctx: event.Context{User: "u", Category: "c", Application: "app"}}

	single := build(false)
	single.HandleEvent(e)
	c1, ok1 := single.TakeCustomization(e)

	all := build(true)
	all.HandleEvent(e)
	c2, ok2 := all.TakeCustomization(e)

	// Both execution models deliver the most specific customization...
	if !ok1 || !ok2 || c1.Origin != "user" || c2.Origin != "user" {
		t.Fatalf("winners = %q / %q", c1.Origin, c2.Origin)
	}
	if c1.Schema.Display != spec.DisplayNull || c2.Schema.Display != spec.DisplayNull {
		t.Fatal("display mismatch")
	}
	// ...but fire-all paid for every matching action.
	if single.Stats().Fired != 1 {
		t.Fatalf("single fired = %d", single.Stats().Fired)
	}
	if all.Stats().Fired != 3 || all.Stats().Selected != 3 {
		t.Fatalf("fire-all stats = %+v", all.Stats())
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	// Equal specificity and equal priority: the lexicographically smaller
	// rule name must win, regardless of insertion order or Indexed mode.
	ctx := event.Context{Category: "novice"}
	e := event.Event{Kind: event.GetSchema, Schema: "s", Ctx: event.Context{Category: "novice"}}
	for _, indexed := range []bool{true, false} {
		for _, order := range [][2]string{{"alpha", "beta"}, {"beta", "alpha"}} {
			en := NewEngine()
			en.Indexed = indexed
			for _, name := range order {
				if err := en.AddRule(custRule(name, ctx, spec.DisplayDefault)); err != nil {
					t.Fatal(err)
				}
			}
			if err := en.HandleEvent(e); err != nil {
				t.Fatal(err)
			}
			c, ok := en.TakeCustomization(e)
			if !ok || c.Origin != "alpha" {
				t.Fatalf("indexed=%v order=%v: winner = %q (ok=%v), want alpha",
					indexed, order, c.Origin, ok)
			}
		}
	}
}

func TestCheckSetFindsAmbiguityAndShadowing(t *testing.T) {
	en := NewEngine()
	// alpha/beta: identical context, scope and priority — ambiguous.
	en.AddRule(custRule("alpha", event.Context{Category: "novice"}, spec.DisplayDefault))
	en.AddRule(custRule("beta", event.Context{Category: "novice"}, spec.DisplayHierarchy))
	// low is shadowed by high: same pattern, strictly higher priority.
	low := custRule("low", event.Context{User: "ann"}, spec.DisplayDefault)
	high := custRule("high", event.Context{User: "ann"}, spec.DisplayHierarchy)
	high.Priority = 5
	en.AddRule(low)
	en.AddRule(high)

	findings := en.CheckSet()
	var checks []string
	for _, f := range findings {
		checks = append(checks, f.Check)
	}
	wantAmb, wantShadow := false, false
	for _, f := range findings {
		switch f.Check {
		case "ambiguity":
			if len(f.Rules) == 2 && f.Rules[0] == "alpha" && f.Rules[1] == "beta" {
				wantAmb = true
			}
		case "shadowing":
			if len(f.Rules) == 2 && f.Rules[0] == "low" && f.Rules[1] == "high" {
				wantShadow = true
			}
		}
	}
	if !wantAmb || !wantShadow {
		t.Fatalf("CheckSet checks = %v, findings = %+v", checks, findings)
	}
}
