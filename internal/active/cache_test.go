// Tests for the dispatch-decision cache (DESIGN.md §10): epoch
// invalidation on every rule mutation, the uncacheable paths (When
// predicates, extended contexts, SelectAll), the bounded pending map, and
// soundness under concurrent mutation (run with -race).
package active

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/spec"
)

func schemaProbe(ctx event.Context) event.Event {
	return event.Event{Kind: event.GetSchema, Schema: "phone_net", Ctx: ctx}
}

// dispatchAndTake runs one event through the engine and pops its selection.
func dispatchAndTake(t *testing.T, en *Engine, e event.Event) (spec.Customization, bool) {
	t.Helper()
	if err := en.HandleEvent(e); err != nil {
		t.Fatal(err)
	}
	return en.TakeCustomization(e)
}

func TestCacheHitSkipsScanButKeepsStats(t *testing.T) {
	en := NewEngine()
	en.AddRule(custRule("generic", event.Context{Application: "pole_manager"}, spec.DisplayDefault))
	en.AddRule(custRule("user", event.Context{User: "juliano", Application: "pole_manager"}, spec.DisplayNull))

	e := schemaProbe(event.Context{User: "juliano", Application: "pole_manager"})
	for i := 0; i < 5; i++ {
		cust, ok := dispatchAndTake(t, en, e)
		if !ok || cust.Origin != "user" {
			t.Fatalf("dispatch %d: origin = %q, ok = %v", i, cust.Origin, ok)
		}
	}

	cs := en.CacheStats()
	if cs.Misses != 1 || cs.Hits != 4 {
		t.Fatalf("cache hits/misses = %d/%d, want 4/1", cs.Hits, cs.Misses)
	}
	st := en.Stats()
	// Stats() semantics are unchanged by caching: every dispatch counts as
	// an event, fires the winner, and records the losing match suppressed —
	// only the match tests (Evaluated) are skipped on a hit.
	if st.Events != 5 || st.Selected != 5 || st.Fired != 5 || st.Suppressed != 5 {
		t.Fatalf("stats = %+v, want 5 events/selected/fired/suppressed", st)
	}
	if evalFirst := st.Evaluated; evalFirst == 0 || evalFirst > 2 {
		t.Fatalf("evaluated = %d, want the first scan's tests only", evalFirst)
	}
	if en.CachedPlans() != 1 {
		t.Fatalf("cached plans = %d", en.CachedPlans())
	}
}

func TestEveryRuleMutationBumpsEpoch(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, en *Engine)
	}{
		{"AddRule", func(t *testing.T, en *Engine) {
			if err := en.AddRule(custRule("late", event.Context{User: "maria"}, spec.DisplayNull)); err != nil {
				t.Fatal(err)
			}
		}},
		{"RemoveRule", func(t *testing.T, en *Engine) {
			if err := en.RemoveRule("base"); err != nil {
				t.Fatal(err)
			}
		}},
		{"FailedAddDoesNot", func(t *testing.T, en *Engine) {
			// Control case: a rejected rule must NOT invalidate.
			if err := en.AddRule(custRule("base", event.Context{}, spec.DisplayNull)); err == nil {
				t.Fatal("duplicate accepted")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			en := NewEngine()
			if err := en.AddRule(custRule("base", event.Context{Application: "pole_manager"}, spec.DisplayDefault)); err != nil {
				t.Fatal(err)
			}
			before := en.Epoch()
			invBefore := en.CacheStats().Invalidations
			tc.mutate(t, en)
			bumped := en.Epoch() != before
			wantBump := tc.name != "FailedAddDoesNot"
			if bumped != wantBump {
				t.Fatalf("%s: epoch %d -> %d, want bump=%v", tc.name, before, en.Epoch(), wantBump)
			}
			if inv := en.CacheStats().Invalidations; (inv != invBefore) != wantBump {
				t.Fatalf("%s: invalidations %d -> %d", tc.name, invBefore, inv)
			}
		})
	}
}

func TestStaleWinnerNeverServedAfterAdd(t *testing.T) {
	en := NewEngine()
	en.AddRule(custRule("generic", event.Context{Application: "pole_manager"}, spec.DisplayDefault))

	e := schemaProbe(event.Context{User: "juliano", Application: "pole_manager"})
	if cust, _ := dispatchAndTake(t, en, e); cust.Origin != "generic" {
		t.Fatalf("origin = %q", cust.Origin)
	}
	// Install a more specific rule for the SAME event shape: the cached
	// "generic" plan is now stale and must not be served.
	en.AddRule(custRule("user", event.Context{User: "juliano", Application: "pole_manager"}, spec.DisplayNull))
	if cust, _ := dispatchAndTake(t, en, e); cust.Origin != "user" {
		t.Fatalf("stale winner served after AddRule: origin = %q", cust.Origin)
	}
}

func TestStaleWinnerNeverServedAfterRemove(t *testing.T) {
	en := NewEngine()
	en.AddRule(custRule("generic", event.Context{Application: "pole_manager"}, spec.DisplayDefault))
	en.AddRule(custRule("user", event.Context{User: "juliano", Application: "pole_manager"}, spec.DisplayNull))

	e := schemaProbe(event.Context{User: "juliano", Application: "pole_manager"})
	if cust, _ := dispatchAndTake(t, en, e); cust.Origin != "user" {
		t.Fatalf("origin = %q", cust.Origin)
	}
	if err := en.RemoveRule("user"); err != nil {
		t.Fatal(err)
	}
	if cust, _ := dispatchAndTake(t, en, e); cust.Origin != "generic" {
		t.Fatalf("removed winner still served: origin = %q", cust.Origin)
	}
	if err := en.RemoveRule("generic"); err != nil {
		t.Fatal(err)
	}
	if _, ok := dispatchAndTake(t, en, e); ok {
		t.Fatal("selection from an empty rule set")
	}
}

func TestWhenPredicateRuleIsUncacheable(t *testing.T) {
	en := NewEngine()
	r := custRule("conditional", event.Context{Application: "pole_manager"}, spec.DisplayNull)
	r.When = func(e event.Event) bool { return e.Name == "wanted" }
	if err := en.AddRule(r); err != nil {
		t.Fatal(err)
	}

	e := schemaProbe(event.Context{Application: "pole_manager"})
	e.Name = "wanted"
	for i := 0; i < 3; i++ {
		if cust, ok := dispatchAndTake(t, en, e); !ok || cust.Origin != "conditional" {
			t.Fatalf("dispatch %d: ok=%v origin=%q", i, ok, cust.Origin)
		}
	}
	// The predicate depends on a field outside the cache key, so every
	// dispatch must rescan: no plans stored, no hits, three uncacheables.
	cs := en.CacheStats()
	if cs.Hits != 0 || cs.Misses != 0 || cs.Uncacheable != 3 {
		t.Fatalf("cache stats = %+v, want 0 hits, 0 misses, 3 uncacheable", cs)
	}
	if en.CachedPlans() != 0 {
		t.Fatalf("cached plans = %d for a When-gated shape", en.CachedPlans())
	}
	// And the predicate keeps working: an event differing only in the
	// un-keyed field must not reuse any decision.
	e2 := schemaProbe(event.Context{Application: "pole_manager"})
	e2.Name = "unwanted"
	if _, ok := dispatchAndTake(t, en, e2); ok {
		t.Fatal("When predicate ignored")
	}
}

func TestExtendedContextBypassesCache(t *testing.T) {
	en := NewEngine()
	en.AddRule(custRule("generic", event.Context{Application: "pole_manager"}, spec.DisplayDefault))
	e := schemaProbe(event.Context{
		Application: "pole_manager",
		Extra:       map[string]string{"device": "tablet"},
	})
	for i := 0; i < 2; i++ {
		if _, ok := dispatchAndTake(t, en, e); !ok {
			t.Fatalf("dispatch %d: no selection", i)
		}
	}
	cs := en.CacheStats()
	if cs.Uncacheable != 2 || cs.Hits != 0 || en.CachedPlans() != 0 {
		t.Fatalf("extended context cached: %+v, plans=%d", cs, en.CachedPlans())
	}
}

func TestSelectAllBypassesCache(t *testing.T) {
	en := NewEngine()
	en.SelectAll = true
	en.AddRule(custRule("generic", event.Context{Application: "pole_manager"}, spec.DisplayDefault))
	en.AddRule(custRule("user", event.Context{User: "juliano", Application: "pole_manager"}, spec.DisplayNull))

	e := schemaProbe(event.Context{User: "juliano", Application: "pole_manager"})
	for i := 0; i < 3; i++ {
		cust, ok := dispatchAndTake(t, en, e)
		if !ok || cust.Origin != "user" {
			t.Fatalf("dispatch %d: most specific must land last, got %q", i, cust.Origin)
		}
	}
	cs := en.CacheStats()
	if cs.Hits+cs.Misses != 0 || en.CachedPlans() != 0 {
		t.Fatalf("SelectAll touched the cache: %+v, plans=%d", cs, en.CachedPlans())
	}
	if fired := en.Stats().Fired; fired != 6 {
		t.Fatalf("fired = %d, want both rules × 3 dispatches", fired)
	}
}

func TestCacheDisabledEngineStoresNothing(t *testing.T) {
	en := NewEngine()
	en.CacheDecisions = false
	en.AddRule(custRule("generic", event.Context{Application: "pole_manager"}, spec.DisplayDefault))
	e := schemaProbe(event.Context{Application: "pole_manager"})
	for i := 0; i < 3; i++ {
		if _, ok := dispatchAndTake(t, en, e); !ok {
			t.Fatal("no selection")
		}
	}
	cs := en.CacheStats()
	if cs.Hits+cs.Misses+cs.Uncacheable != 0 || en.CachedPlans() != 0 {
		t.Fatalf("disabled cache saw traffic: %+v, plans=%d", cs, en.CachedPlans())
	}
	// Evaluated grows on every dispatch: each one rescans.
	if ev := en.Stats().Evaluated; ev != 3 {
		t.Fatalf("evaluated = %d, want 3 (one test per dispatch)", ev)
	}
}

// TestPendingMapBounded is the regression test for the unbounded pending
// map: selections never claimed via TakeCustomization must be evicted
// oldest-first once MaxPending is reached.
func TestPendingMapBounded(t *testing.T) {
	en := NewEngine()
	en.MaxPending = 4
	en.AddRule(Rule{
		Name: "values", Family: FamilyCustomization, On: event.GetValue,
		Context:   event.Context{Application: "pole_manager"},
		Customize: nilCust,
	})

	ctx := event.Context{Application: "pole_manager"}
	mk := func(oid catalog.OID) event.Event {
		return event.Event{Kind: event.GetValue, Schema: "phone_net", Class: "Pole", OID: oid, Ctx: ctx}
	}
	// 10 distinct events, none claimed: the map must stay at the bound.
	for oid := catalog.OID(1); oid <= 10; oid++ {
		if err := en.HandleEvent(mk(oid)); err != nil {
			t.Fatal(err)
		}
	}
	if got := en.PendingCount(); got != 4 {
		t.Fatalf("pending = %d, want MaxPending=4", got)
	}
	if dropped := en.CacheStats().PendingDropped; dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	// Oldest evicted, newest still claimable.
	if _, ok := en.TakeCustomization(mk(1)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := en.TakeCustomization(mk(10)); !ok {
		t.Fatal("newest entry was evicted")
	}
	// Claimed entries free their slot: the next store must not evict.
	en.TakeCustomization(mk(9))
	en.TakeCustomization(mk(8))
	before := en.CacheStats().PendingDropped
	if err := en.HandleEvent(mk(11)); err != nil {
		t.Fatal(err)
	}
	if got := en.CacheStats().PendingDropped; got != before {
		t.Fatalf("eviction despite free slots: %d -> %d", before, got)
	}
}

// TestPendingQueueCompaction drives many claim-then-store cycles through one
// engine: the internal FIFO must not grow proportionally to traffic.
func TestPendingQueueCompaction(t *testing.T) {
	en := NewEngine()
	en.MaxPending = 8
	en.AddRule(Rule{
		Name: "values", Family: FamilyCustomization, On: event.GetValue,
		Context:   event.Context{Application: "pole_manager"},
		Customize: nilCust,
	})
	ctx := event.Context{Application: "pole_manager"}
	for i := 0; i < 10_000; i++ {
		e := event.Event{Kind: event.GetValue, OID: catalog.OID(i % 16), Ctx: ctx}
		if err := en.HandleEvent(e); err != nil {
			t.Fatal(err)
		}
		en.TakeCustomization(e) // claimed immediately, as the UI does
	}
	en.mu.Lock()
	qlen := len(en.pendingQ)
	en.mu.Unlock()
	if qlen > 2*en.MaxPending {
		t.Fatalf("pendingQ length = %d after prompt claims, want <= %d", qlen, 2*en.MaxPending)
	}
	if dropped := en.CacheStats().PendingDropped; dropped != 0 {
		t.Fatalf("prompt claims still dropped %d selections", dropped)
	}
}

// TestCacheSoundUnderConcurrentMutation hammers dispatch from several
// goroutines while rules are added and removed. Run under -race this proves
// the epoch protocol: whatever interleaving occurs, a dispatch after the
// final mutation must see the final rule set.
func TestCacheSoundUnderConcurrentMutation(t *testing.T) {
	en := NewEngine()
	en.AddRule(custRule("generic", event.Context{Application: "pole_manager"}, spec.DisplayDefault))

	const dispatchers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for d := 0; d < dispatchers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			e := schemaProbe(event.Context{User: fmt.Sprintf("user%d", d), Application: "pole_manager"})
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := en.HandleEvent(e); err != nil {
					t.Error(err)
					return
				}
				if cust, ok := en.TakeCustomization(e); ok && cust.Origin == "" {
					t.Error("empty origin")
					return
				}
			}
		}(d)
	}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("churn%d", i)
		if err := en.AddRule(custRule(name, event.Context{User: "user1", Application: "pole_manager"}, spec.DisplayNull)); err != nil {
			t.Fatal(err)
		}
		if err := en.RemoveRule(name); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// After the churn the only rule left is "generic": the cache must agree.
	e := schemaProbe(event.Context{User: "user1", Application: "pole_manager"})
	for i := 0; i < 2; i++ {
		if cust, ok := dispatchAndTake(t, en, e); !ok || cust.Origin != "generic" {
			t.Fatalf("post-churn origin = %q ok=%v", cust.Origin, ok)
		}
	}
}
