package custlang

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/active"
	"repro/internal/obs"
	"repro/internal/ruleanalysis"
)

func TestParseFilePositions(t *testing.T) {
	src := `For user juliano application pole_manager
schema phone_net display as Null
class Pole display
  control as poleWidget
  instances
    display attribute pole_location as Null
`
	ds, err := ParseFile("f6.cust", src)
	if err != nil {
		t.Fatal(err)
	}
	d := ds[0]
	if d.Pos != (ruleanalysis.Position{File: "f6.cust", Line: 1, Col: 1}) {
		t.Errorf("directive pos = %v", d.Pos)
	}
	if d.Schema.Pos != (ruleanalysis.Position{File: "f6.cust", Line: 2, Col: 1}) {
		t.Errorf("schema pos = %v", d.Schema.Pos)
	}
	if d.Classes[0].Pos != (ruleanalysis.Position{File: "f6.cust", Line: 3, Col: 1}) {
		t.Errorf("class pos = %v", d.Classes[0].Pos)
	}
	if d.Classes[0].Attrs[0].Pos != (ruleanalysis.Position{File: "f6.cust", Line: 6, Col: 5}) {
		t.Errorf("attr pos = %v", d.Classes[0].Attrs[0].Pos)
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := ParseFile("bad.cust", "For user u\nclass C show\n")
	if err == nil || !strings.Contains(err.Error(), "bad.cust:2:9") {
		t.Fatalf("parse error lacks file:line:col: %v", err)
	}
	// Without a file name the position degrades to line:col.
	_, err = Parse("For user u\nclass C show\n")
	if err == nil || !strings.Contains(err.Error(), "2:9") ||
		strings.Contains(err.Error(), "bad.cust") {
		t.Fatalf("fileless parse error = %v", err)
	}
	// Lexer errors carry positions too.
	_, err = ParseFile("bad.cust", "For user u ???")
	if err == nil || !strings.Contains(err.Error(), "bad.cust:1:12") {
		t.Fatalf("lex error lacks position: %v", err)
	}
}

func TestAnalyzeErrorPositions(t *testing.T) {
	a, _ := testAnalyzer(t)
	src := `For user u
schema phone_net display as default
class Pole display
  control as ghost
`
	ds, err := ParseFile("sem.cust", src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Analyze(ds[0])
	if err == nil || !strings.Contains(err.Error(), "sem.cust:3:1") {
		t.Fatalf("semantic error lacks clause position: %v", err)
	}
}

func TestPriorityClause(t *testing.T) {
	d, err := ParseOne(`For user u priority 7
schema phone_net display as default`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Priority != 7 {
		t.Fatalf("priority = %d", d.Priority)
	}
	// Round trip preserves the clause.
	d2, err := ParseOne(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if d2.Priority != 7 || d.String() != d2.String() {
		t.Fatalf("round trip: %q vs %q", d.String(), d2.String())
	}
	// Bad values and duplicates are syntax errors.
	for _, src := range []string{
		`For user u priority high schema s display as default`,
		`For user u priority 1 priority 2 schema s display as default`,
		`For user u priority schema s display as default`,
	} {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: err = %v", src, err)
		}
	}
	// Priority alone is not a context.
	if _, err := Parse(`For priority 1 schema s display as default`); !errors.Is(err, ErrSyntax) {
		t.Errorf("contextless priority accepted: %v", err)
	}
}

func TestPriorityReachesCompiledRules(t *testing.T) {
	a, _ := testAnalyzer(t)
	units, err := a.CompileSourceFile("p.cust", `For user u priority 3
schema phone_net display as default`)
	if err != nil {
		t.Fatal(err)
	}
	r := units[0].Rules[0]
	if r.Priority != 3 {
		t.Fatalf("rule priority = %d", r.Priority)
	}
	if r.Src != (ruleanalysis.Position{File: "p.cust", Line: 2, Col: 1}) {
		t.Fatalf("rule src = %v", r.Src)
	}
}

func TestCheckProgram(t *testing.T) {
	parse := func(src string) []Directive {
		t.Helper()
		ds, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	// Identical context, compatible content: duplicate-context warning.
	fs := CheckProgram(parse(`For user u
schema s display as default
For user u
class C display control as w`))
	if len(fs) != 1 || fs[0].Check != ruleanalysis.CheckDuplicateContext ||
		fs[0].Severity != ruleanalysis.SeverityWarning {
		t.Fatalf("duplicate-context findings = %+v", fs)
	}
	// Identical context, disagreeing display: conflict error.
	fs = CheckProgram(parse(`For user u
schema s display as default
For user u
schema s display as hierarchy`))
	if len(fs) != 1 || fs[0].Check != ruleanalysis.CheckConflict ||
		fs[0].Severity != ruleanalysis.SeverityError {
		t.Fatalf("conflict findings = %+v", fs)
	}
	if !strings.Contains(fs[0].Message, "hierarchy") || !strings.Contains(fs[0].Message, "default") {
		t.Errorf("conflict message should show both modes: %s", fs[0].Message)
	}
	// Differing priorities layer cleanly: no findings.
	fs = CheckProgram(parse(`For user u
schema s display as default
For user u priority 1
schema s display as hierarchy`))
	if len(fs) != 0 {
		t.Fatalf("prioritized pair: findings = %+v", fs)
	}
	// Different contexts: no findings.
	fs = CheckProgram(parse(`For user u
schema s display as default
For user v
schema s display as hierarchy`))
	if len(fs) != 0 {
		t.Fatalf("distinct contexts: findings = %+v", fs)
	}
	// Conflicting attribute widgets are called out.
	fs = CheckProgram(parse(`For user u
schema s display as default
class C display instances display attribute a as text
For user u
schema s display as default
class C display instances display attribute a as Null`))
	found := false
	for _, f := range fs {
		if f.Check == ruleanalysis.CheckConflict && strings.Contains(f.Message, "attribute a") {
			found = true
		}
	}
	if !found {
		t.Fatalf("attr conflict not reported: %+v", fs)
	}
}

func TestStrictInstallRejectsConflicts(t *testing.T) {
	a, _ := testAnalyzer(t)
	a.Strict = true
	engine := active.NewEngine()
	src := `For user u
schema phone_net display as default
For user u
schema phone_net display as hierarchy
`
	before := obs.Default().Counter(`gis_lint_findings_total{check="conflict"}`).Value()
	_, err := a.InstallFile(engine, "dup.cust", src)
	if !errors.Is(err, ErrRuleSet) {
		t.Fatalf("strict install err = %v", err)
	}
	if !strings.Contains(err.Error(), "conflict") || !strings.Contains(err.Error(), "dup.cust:3:1") {
		t.Fatalf("error lacks finding detail: %v", err)
	}
	if engine.RuleCount() != 0 {
		t.Fatalf("rollback failed: %d rules left", engine.RuleCount())
	}
	after := obs.Default().Counter(`gis_lint_findings_total{check="conflict"}`).Value()
	if after <= before {
		t.Fatalf("lint findings counter did not move: %d -> %d", before, after)
	}
	// The same source installs fine without Strict (back-compat), and a
	// clean file installs fine with it.
	a.Strict = false
	if _, err := a.Install(active.NewEngine(), src); err != nil {
		t.Fatalf("non-strict install: %v", err)
	}
	a.Strict = true
	if _, err := a.InstallFile(active.NewEngine(), "ok.cust", `For user u
schema phone_net display as default`); err != nil {
		t.Fatalf("strict install of clean file: %v", err)
	}
}
