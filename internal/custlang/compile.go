package custlang

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/active"
	"repro/internal/event"
	"repro/internal/ruleanalysis"
	"repro/internal/spec"
)

// ErrRuleSet is wrapped by strict installs that reject a rule set because
// static analysis found an error-severity problem (ambiguity, triggering
// cycle, conflicting directives).
var ErrRuleSet = errors.New("custlang: rule set rejected by static analysis")

// This file is the directive-to-rule compiler: §3.4's mapping of a
// customization directive into customization database rules — one schema
// presentation rule per schema clause (triggered by Get_Schema), one class
// presentation rule per class clause (Get_Class), and one instance
// presentation rule per instances clause (Get_Value). The For clause becomes
// the Condition of every generated rule.

// Compiled pairs a normalized directive with its generated rules.
type Compiled struct {
	Directive Directive
	Rules     []active.Rule
}

// RuleNames lists the generated rule names in order.
func (c Compiled) RuleNames() []string {
	out := make([]string, len(c.Rules))
	for i, r := range c.Rules {
		out[i] = r.Name
	}
	return out
}

// Compile analyzes and compiles one directive. The id disambiguates rule
// names when several directives target the same context (callers typically
// pass the directive's index within its source file).
func (a *Analyzer) Compile(d Directive, id int) (Compiled, error) {
	norm, err := a.Analyze(d)
	if err != nil {
		return Compiled{}, err
	}
	schemaName := a.DefaultSchema
	if norm.Schema != nil {
		schemaName = norm.Schema.Name
	}
	ctxTag := contextTag(norm.Context)
	var rules []active.Rule

	if norm.Schema != nil {
		sc := *norm.Schema
		classes := make([]string, len(norm.Classes))
		for i, c := range norm.Classes {
			classes[i] = c.Name
		}
		cust := spec.Customization{
			Level: spec.LevelSchema,
			Schema: spec.SchemaCust{
				Schema:  sc.Name,
				Display: sc.Display,
				Widget:  sc.Widget,
				Classes: classes,
			},
		}
		rules = append(rules, active.Rule{
			Name:     fmt.Sprintf("cust%d[%s]schema:%s", id, ctxTag, sc.Name),
			Family:   active.FamilyCustomization,
			On:       event.GetSchema,
			Schema:   sc.Name,
			Context:  norm.Context,
			Priority: norm.Priority,
			Cond:     norm.When,
			Src:      sc.Pos,
			Customize: func(event.Event) (spec.Customization, error) {
				return cust, nil
			},
		})
	}

	for _, cc := range norm.Classes {
		if cc.Control != "" || cc.Presentation != "" {
			cust := spec.Customization{
				Level: spec.LevelClass,
				Class: spec.ClassCust{
					Class:        cc.Name,
					Control:      cc.Control,
					Presentation: cc.Presentation,
				},
			}
			rules = append(rules, active.Rule{
				Name:     fmt.Sprintf("cust%d[%s]class:%s", id, ctxTag, cc.Name),
				Family:   active.FamilyCustomization,
				On:       event.GetClass,
				Schema:   schemaName,
				Class:    cc.Name,
				Context:  norm.Context,
				Priority: norm.Priority,
				Cond:     norm.When,
				Src:      cc.Pos,
				Customize: func(event.Event) (spec.Customization, error) {
					return cust, nil
				},
			})
		}
		if len(cc.Attrs) > 0 {
			ic := spec.InstanceCust{Class: cc.Name}
			for _, ac := range cc.Attrs {
				ic.Attrs = append(ic.Attrs, spec.AttrCust{
					Attr:   ac.Attr,
					Null:   ac.Null,
					Widget: ac.Widget,
					From:   ac.From,
					Using:  ac.Using,
				})
			}
			cust := spec.Customization{Level: spec.LevelInstance, Instance: ic}
			rules = append(rules, active.Rule{
				Name:     fmt.Sprintf("cust%d[%s]instance:%s", id, ctxTag, cc.Name),
				Family:   active.FamilyCustomization,
				On:       event.GetValue,
				Schema:   schemaName,
				Class:    cc.Name,
				Context:  norm.Context,
				Priority: norm.Priority,
				Cond:     norm.When,
				Src:      cc.Pos,
				Customize: func(event.Event) (spec.Customization, error) {
					return cust, nil
				},
			})
		}
	}
	return Compiled{Directive: norm, Rules: rules}, nil
}

// CompileSource parses, analyzes and compiles a whole source file.
func (a *Analyzer) CompileSource(src string) ([]Compiled, error) {
	return a.CompileSourceFile("", src)
}

// CompileSourceFile is CompileSource with the file name threaded into every
// diagnostic and rule position.
func (a *Analyzer) CompileSourceFile(file, src string) ([]Compiled, error) {
	ds, err := ParseFile(file, src)
	if err != nil {
		return nil, err
	}
	out := make([]Compiled, 0, len(ds))
	for i, d := range ds {
		c, err := a.Compile(d, i)
		if err != nil {
			return nil, fmt.Errorf("directive %d (line %d): %w", i, d.Line, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// Install compiles a source file and adds every generated rule to the
// engine, returning the compiled units. On any error no rules are installed.
func (a *Analyzer) Install(engine *active.Engine, src string) ([]Compiled, error) {
	return a.InstallFile(engine, "", src)
}

// InstallFile is Install with the file name threaded into diagnostics. When
// the analyzer's Strict mode is on, the install additionally runs the static
// rule-set analysis — the whole-program directive checks plus the engine's
// CheckSet over everything now installed — records the findings in the
// metrics registry, and rolls the install back (wrapping ErrRuleSet) if any
// finding is an error.
func (a *Analyzer) InstallFile(engine *active.Engine, file, src string) ([]Compiled, error) {
	units, err := a.CompileSourceFile(file, src)
	if err != nil {
		return nil, err
	}
	var installed []string
	rollback := func() {
		for _, name := range installed {
			_ = engine.RemoveRule(name)
		}
	}
	for _, u := range units {
		for _, r := range u.Rules {
			if err := engine.AddRule(r); err != nil {
				rollback()
				return nil, err
			}
			installed = append(installed, r.Name)
		}
	}
	if a.Strict {
		ds := make([]Directive, len(units))
		for i, u := range units {
			ds[i] = u.Directive
		}
		findings := append(CheckProgram(ds), engine.CheckSet()...)
		ruleanalysis.Sort(findings)
		ruleanalysis.ObserveFindings(findings)
		if worst, ok := ruleanalysis.MaxSeverity(findings); ok && worst >= ruleanalysis.SeverityError {
			rollback()
			msgs := make([]string, 0, len(findings))
			for _, f := range findings {
				if f.Severity >= ruleanalysis.SeverityError {
					msgs = append(msgs, f.String())
				}
			}
			return nil, fmt.Errorf("%w:\n  %s", ErrRuleSet, strings.Join(msgs, "\n  "))
		}
	}
	return units, nil
}

func contextTag(c event.Context) string {
	var parts []string
	if c.User != "" {
		parts = append(parts, "u="+c.User)
	}
	if c.Category != "" {
		parts = append(parts, "c="+c.Category)
	}
	if c.Application != "" {
		parts = append(parts, "a="+c.Application)
	}
	keys := make([]string, 0, len(c.Extra))
	for k := range c.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, k+"="+c.Extra[k])
	}
	return strings.Join(parts, ",")
}
