package custlang

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/ruleanalysis"
	"repro/internal/spec"
)

// Directive is one parsed customization directive: a context (the For
// clause) plus schema, class and instance clauses. A source file may hold
// several directives; each spawns its own rule set.
type Directive struct {
	// Context is the For clause: the condition of every rule derived from
	// this directive ("this condition is the same for all rules derived
	// from a given customization directive").
	Context event.Context
	// Schema is the optional schema clause.
	Schema *SchemaClause
	// Classes are the class clauses, in source order.
	Classes []ClassClause
	// Priority breaks selection ties between directives whose contexts have
	// equal specificity ("For ... priority <n>"); higher wins. Without it
	// two directives for the same context are ambiguous — gislint flags
	// them — so priority is how an author legitimately layers overrides.
	Priority int
	// When is an optional condition expression (`when "<expr>"`, the
	// ruleanalysis condition grammar) restricting the directive beyond its
	// context pattern — e.g. `when "scale > 10000"`. It becomes the Cond of
	// every generated rule, so the engine enforces it at dispatch and the
	// static checks reason about its satisfiability: two same-context
	// directives with provably disjoint when clauses are not duplicates.
	When string
	// Line records the directive's starting line for diagnostics.
	Line int
	// Pos locates the For keyword (Line plus the column and source file).
	Pos ruleanalysis.Position
}

// SchemaClause is "schema <name> display as <mode> [<widget>]".
type SchemaClause struct {
	Name    string
	Display spec.SchemaDisplay
	// Widget names the library object for the user-defined mode.
	Widget string
	// Pos locates the schema keyword.
	Pos ruleanalysis.Position
}

// ClassClause is "class <name> display [control as <w>]
// [presentation as <f>] [instances <attr clauses>]".
type ClassClause struct {
	Name         string
	Control      string
	Presentation string
	Attrs        []AttrClause
	// Pos locates the class keyword.
	Pos ruleanalysis.Position
}

// AttrClause is "display attribute <attr> as <widget>|Null
// [from <source>+] [using <callback>]".
type AttrClause struct {
	Attr   string
	Null   bool
	Widget string
	From   []spec.AttrSource
	Using  string
	// Pos locates the display keyword opening the clause.
	Pos ruleanalysis.Position
}

// String renders the directive in canonical concrete syntax; parsing the
// output reproduces the directive (the F3 round-trip property).
func (d Directive) String() string {
	var b strings.Builder
	b.WriteString("For")
	if d.Context.User != "" {
		fmt.Fprintf(&b, " user %s", d.Context.User)
	}
	if d.Context.Category != "" {
		fmt.Fprintf(&b, " category %s", d.Context.Category)
	}
	if d.Context.Application != "" {
		fmt.Fprintf(&b, " application %s", d.Context.Application)
	}
	extraKeys := make([]string, 0, len(d.Context.Extra))
	for k := range d.Context.Extra {
		extraKeys = append(extraKeys, k)
	}
	sort.Strings(extraKeys)
	for _, k := range extraKeys {
		fmt.Fprintf(&b, " where %s %s", k, d.Context.Extra[k])
	}
	if d.When != "" {
		fmt.Fprintf(&b, " when %q", d.When)
	}
	if d.Priority != 0 {
		fmt.Fprintf(&b, " priority %d", d.Priority)
	}
	b.WriteString("\n")
	if d.Schema != nil {
		fmt.Fprintf(&b, "schema %s display as %s", d.Schema.Name, d.Schema.Display)
		if d.Schema.Display == spec.DisplayUserDefined {
			fmt.Fprintf(&b, " %s", d.Schema.Widget)
		}
		b.WriteString("\n")
	}
	for _, c := range d.Classes {
		fmt.Fprintf(&b, "class %s display\n", c.Name)
		if c.Control != "" {
			fmt.Fprintf(&b, "  control as %s\n", c.Control)
		}
		if c.Presentation != "" {
			fmt.Fprintf(&b, "  presentation as %s\n", c.Presentation)
		}
		if len(c.Attrs) > 0 {
			b.WriteString("  instances\n")
			for _, a := range c.Attrs {
				if a.Null {
					fmt.Fprintf(&b, "    display attribute %s as Null\n", a.Attr)
					continue
				}
				fmt.Fprintf(&b, "    display attribute %s as %s\n", a.Attr, a.Widget)
				if len(a.From) > 0 {
					b.WriteString("      from")
					for _, s := range a.From {
						b.WriteString(" " + s.String())
					}
					b.WriteString("\n")
				}
				if a.Using != "" {
					fmt.Fprintf(&b, "      using %s()\n", a.Using)
				}
			}
		}
	}
	return b.String()
}
