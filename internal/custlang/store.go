package custlang

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/active"
	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/geodb"
)

// This file stores customization directives inside the geographic database,
// realizing §3.4's "customization rules stored in the database are derived
// from assertives written in this language": the assertives (source text)
// persist as instances of a reserved class, and sessions recompile them into
// engine rules at attach time.

// RuleSchema is the reserved schema for persisted directives.
const RuleSchema = "_ui_rules"

// RuleClass is the class of persisted directives.
const RuleClass = "CustomizationDirective"

func ensureRuleClass(db *geodb.DB) error {
	if err := db.DefineSchema(RuleSchema); err != nil && !errors.Is(err, catalog.ErrDuplicate) {
		return err
	}
	err := db.DefineClass(RuleSchema, catalog.Class{
		Name: RuleClass,
		Attrs: []catalog.Field{
			catalog.F("name", catalog.Scalar(catalog.KindText)),
			catalog.F("source", catalog.Scalar(catalog.KindText)),
		},
	})
	if err != nil && !errors.Is(err, catalog.ErrDuplicate) {
		return err
	}
	return nil
}

// SaveDirectives validates and stores a named directive source file in the
// database, replacing any previous version under the same name. Validation
// runs through the analyzer so only compilable sources persist.
func (a *Analyzer) SaveDirectives(db *geodb.DB, name, src string) error {
	if _, err := a.CompileSource(src); err != nil {
		return fmt.Errorf("custlang: refusing to store invalid directives %q: %w", name, err)
	}
	if err := ensureRuleClass(db); err != nil {
		return err
	}
	ctx := event.Context{Application: "_ui_rules"}
	existing, err := db.Select(RuleSchema, RuleClass, func(in geodb.Instance) bool {
		v, _ := in.Get("name")
		return v.Text == name
	})
	if err != nil {
		return err
	}
	for _, in := range existing {
		if err := db.Delete(ctx, in.OID); err != nil {
			return err
		}
	}
	_, err = db.InsertMap(ctx, RuleSchema, RuleClass, map[string]catalog.Value{
		"name":   catalog.TextVal(name),
		"source": catalog.TextVal(src),
	})
	return err
}

// LoadDirectives returns every stored directive source, keyed by name.
func LoadDirectives(db *geodb.DB) (map[string]string, error) {
	instances, err := db.Select(RuleSchema, RuleClass, nil)
	if err != nil {
		if errors.Is(err, catalog.ErrUnknown) {
			return map[string]string{}, nil
		}
		return nil, err
	}
	out := make(map[string]string, len(instances))
	for _, in := range instances {
		name, _ := in.Get("name")
		src, _ := in.Get("source")
		out[name.Text] = src.Text
	}
	return out, nil
}

// InstallStored compiles and installs every directive stored in the
// database onto the engine — what a session does at attach time. Directive
// files install in name order so rule ids are deterministic.
func (a *Analyzer) InstallStored(db *geodb.DB, engine *active.Engine) (int, error) {
	stored, err := LoadDirectives(db)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(stored))
	for name := range stored {
		names = append(names, name)
	}
	sort.Strings(names)
	installed := 0
	for _, name := range names {
		units, err := a.Install(engine, stored[name])
		if err != nil {
			return installed, fmt.Errorf("custlang: stored directives %q: %w", name, err)
		}
		for _, u := range units {
			installed += len(u.Rules)
		}
	}
	return installed, nil
}
