package custlang

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/ruleanalysis"
	"repro/internal/spec"
	"repro/internal/uikit"
)

// ErrSemantic is wrapped by every semantic-analysis failure.
var ErrSemantic = errors.New("custlang: semantic error")

// Analyzer validates directives against the database catalog and the
// interface objects library — the "target user of this language is the
// application designer, who has knowledge about the database schema": the
// analyzer is what holds a directive to that knowledge.
type Analyzer struct {
	// Cat is the database catalog directives are checked against.
	Cat *catalog.Catalog
	// Lib is the interface objects library widget references must exist in.
	Lib *uikit.Library
	// Formats is the set of known presentation formats. Nil means the
	// builder defaults (pointFormat, lineFormat, regionFormat,
	// defaultFormat).
	Formats map[string]bool
	// DefaultSchema is used when a directive has no schema clause.
	DefaultSchema string
	// Strict makes InstallFile run the static rule-set analysis
	// (internal/ruleanalysis) after installing and reject the source —
	// rolling the install back — when any finding is an error.
	Strict bool
}

var builderFormats = map[string]bool{
	"pointFormat":   true,
	"lineFormat":    true,
	"regionFormat":  true,
	"defaultFormat": true,
}

func (a *Analyzer) formatKnown(name string) bool {
	if a.Formats != nil {
		return a.Formats[name]
	}
	return builderFormats[name]
}

// Analyze validates the directive and returns a normalized copy: attribute
// source paths are rewritten to canonical "attribute.tuple_field" form (the
// paper's shorthand "pole.material" resolves to
// "pole_composition.pole_material"). All detected errors are joined.
func (a *Analyzer) Analyze(d Directive) (Directive, error) {
	var errs []error
	fail := func(pos ruleanalysis.Position, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		if s := pos.String(); s != "" {
			msg = s + ": " + msg
		}
		errs = append(errs, fmt.Errorf("%w: %s", ErrSemantic, msg))
	}

	schemaName := a.DefaultSchema
	schemaPos := d.Pos
	if d.Schema != nil {
		schemaName = d.Schema.Name
		schemaPos = d.Schema.Pos
	}
	if schemaName == "" {
		fail(d.Pos, "directive at line %d has no schema clause and no default schema", d.Line)
		return d, errors.Join(errs...)
	}
	sch, err := a.Cat.Schema(schemaName)
	if err != nil {
		fail(schemaPos, "unknown schema %q", schemaName)
		return d, errors.Join(errs...)
	}

	out := d
	if d.Schema != nil {
		sc := *d.Schema
		if sc.Display == spec.DisplayUserDefined && !a.Lib.Has(sc.Widget) {
			fail(sc.Pos, "schema clause: widget %q not in the interface objects library", sc.Widget)
		}
		out.Schema = &sc
	}

	out.Classes = make([]ClassClause, len(d.Classes))
	seenClass := map[string]bool{}
	for i, cc := range d.Classes {
		norm := cc
		if seenClass[cc.Name] {
			fail(cc.Pos, "duplicate class clause for %q", cc.Name)
		}
		seenClass[cc.Name] = true
		if !sch.HasClass(cc.Name) {
			fail(cc.Pos, "unknown class %q in schema %q", cc.Name, schemaName)
			out.Classes[i] = norm
			continue
		}
		if cc.Control != "" && !a.Lib.Has(cc.Control) {
			fail(cc.Pos, "class %s: control widget %q not in the library", cc.Name, cc.Control)
		}
		if cc.Presentation != "" && !a.formatKnown(cc.Presentation) {
			fail(cc.Pos, "class %s: unknown presentation format %q", cc.Name, cc.Presentation)
		}
		attrs, err := sch.EffectiveAttrs(cc.Name)
		if err != nil {
			fail(cc.Pos, "class %s: %v", cc.Name, err)
			out.Classes[i] = norm
			continue
		}
		methods, err := sch.EffectiveMethods(cc.Name)
		if err != nil {
			fail(cc.Pos, "class %s: %v", cc.Name, err)
		}
		norm.Attrs = make([]AttrClause, len(cc.Attrs))
		seenAttr := map[string]bool{}
		for j, ac := range cc.Attrs {
			na := ac
			if seenAttr[ac.Attr] {
				fail(ac.Pos, "class %s: duplicate display attribute clause for %q", cc.Name, ac.Attr)
			}
			seenAttr[ac.Attr] = true
			if !attrExists(attrs, ac.Attr) {
				fail(ac.Pos, "class %s: unknown attribute %q", cc.Name, ac.Attr)
			}
			if !ac.Null {
				if !a.Lib.Has(ac.Widget) {
					fail(ac.Pos, "class %s, attribute %s: widget %q not in the library",
						cc.Name, ac.Attr, ac.Widget)
				}
				na.From = make([]spec.AttrSource, len(ac.From))
				for k, src := range ac.From {
					ns, err := resolveSource(attrs, methods, src)
					if err != nil {
						fail(ac.Pos, "class %s, attribute %s: %v", cc.Name, ac.Attr, err)
						ns = src
					}
					na.From[k] = ns
				}
			}
			norm.Attrs[j] = na
		}
		out.Classes[i] = norm
	}
	return out, errors.Join(errs...)
}

func attrExists(attrs []catalog.Field, name string) bool {
	for _, a := range attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

// resolveSource validates a source and rewrites shorthand paths to the
// canonical form.
func resolveSource(attrs []catalog.Field, methods []catalog.Method, src spec.AttrSource) (spec.AttrSource, error) {
	if src.Method != "" {
		found := false
		for _, m := range methods {
			if m.Name == src.Method {
				found = true
				break
			}
		}
		if !found {
			return src, fmt.Errorf("method %q not declared on the class", src.Method)
		}
		out := src
		out.Args = make([]string, len(src.Args))
		for i, arg := range src.Args {
			path, err := resolvePath(attrs, arg)
			if err != nil {
				return src, fmt.Errorf("argument %q of %s: %v", arg, src.Method, err)
			}
			out.Args[i] = path
		}
		return out, nil
	}
	path, err := resolvePath(attrs, src.Attr)
	if err != nil {
		return src, err
	}
	return spec.AttrSource{Attr: path}, nil
}

// resolvePath resolves "attr", "attr.field" and the paper's shorthand
// "prefix.field" (matching a tuple attribute holding a field named
// "prefix_field") to canonical form.
func resolvePath(attrs []catalog.Field, path string) (string, error) {
	head, tail, dotted := strings.Cut(path, ".")
	// Exact attribute name first.
	for _, a := range attrs {
		if a.Name != head {
			continue
		}
		if !dotted {
			return head, nil
		}
		if a.Type.Kind != catalog.KindTuple {
			return "", fmt.Errorf("attribute %q is not a tuple", head)
		}
		for _, f := range a.Type.Fields {
			if f.Name == tail {
				return head + "." + tail, nil
			}
		}
		return "", fmt.Errorf("tuple attribute %q has no field %q", head, tail)
	}
	// Shorthand: look for a tuple field named head_tail (dotted) or head.
	want := head
	if dotted {
		want = head + "_" + tail
	}
	for _, a := range attrs {
		if a.Type.Kind != catalog.KindTuple {
			continue
		}
		for _, f := range a.Type.Fields {
			if f.Name == want {
				return a.Name + "." + f.Name, nil
			}
		}
	}
	return "", fmt.Errorf("cannot resolve source path %q", path)
}
