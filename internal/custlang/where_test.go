package custlang

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/active"
	"repro/internal/event"
	"repro/internal/spec"
)

// The where-clause extension: extra context dimensions (geographic scale,
// time framework) beyond the paper's <user, category, application> tuple.

const scaleDirectives = `
# City-scale browsing: regions, coarse.
For application pole_manager where scale small
schema phone_net display as default

# Street-scale browsing: hierarchy, detailed.
For application pole_manager where scale large
schema phone_net display as hierarchy

# A specific user at street scale outranks the generic scale rule.
For user juliano application pole_manager where scale large
schema phone_net display as Null
`

func TestWhereClauseParsesAndPrints(t *testing.T) {
	d, err := ParseOne(`For user u where scale large where epoch 1997
schema phone_net display as default`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Context.Extra["scale"] != "large" || d.Context.Extra["epoch"] != "1997" {
		t.Fatalf("extra = %v", d.Context.Extra)
	}
	printed := d.String()
	if !strings.Contains(printed, "where epoch 1997 where scale large") {
		t.Fatalf("printed = %q", printed)
	}
	// Round trip.
	back, err := ParseOne(printed)
	if err != nil || back.String() != printed {
		t.Fatalf("round trip: %v\n%q\n%q", err, printed, back.String())
	}
}

func TestWhereClauseErrors(t *testing.T) {
	bad := []string{
		`For user u where`,       // missing key
		`For user u where scale`, // missing value
		`For user u where scale a where scale b schema s display as default`, // duplicate
		`For where scale a schema s display as default`,                      // where alone counts, but "For where"? where IS a context part...
	}
	for i, src := range bad[:3] {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	// A directive whose only context part is a where clause is legal: it
	// scopes by dimension alone.
	d, err := ParseOne(`For where scale small
schema phone_net display as default`)
	if err != nil {
		t.Fatalf("where-only context: %v", err)
	}
	if d.Context.User != "" || d.Context.Extra["scale"] != "small" {
		t.Fatalf("context = %+v", d.Context)
	}
}

func TestScaleDependentSelection(t *testing.T) {
	a, _ := testAnalyzer(t)
	engine := active.NewEngine()
	if _, err := a.Install(engine, scaleDirectives); err != nil {
		t.Fatal(err)
	}
	probe := func(user, scale string) (spec.SchemaDisplay, bool) {
		e := event.Event{
			Kind: event.GetSchema, Schema: "phone_net",
			Ctx: event.Context{
				User: user, Application: "pole_manager",
				Extra: map[string]string{"scale": scale},
			},
		}
		if err := engine.HandleEvent(e); err != nil {
			t.Fatal(err)
		}
		c, ok := engine.TakeCustomization(e)
		return c.Schema.Display, ok
	}
	// Generic user: the scale decides.
	if d, ok := probe("maria", "small"); !ok || d != spec.DisplayDefault {
		t.Fatalf("maria@small = %v, %v", d, ok)
	}
	if d, ok := probe("maria", "large"); !ok || d != spec.DisplayHierarchy {
		t.Fatalf("maria@large = %v, %v", d, ok)
	}
	// juliano at large scale: the user-specific rule outranks.
	if d, ok := probe("juliano", "large"); !ok || d != spec.DisplayNull {
		t.Fatalf("juliano@large = %v, %v", d, ok)
	}
	// juliano at small scale: only the generic small-scale rule matches.
	if d, ok := probe("juliano", "small"); !ok || d != spec.DisplayDefault {
		t.Fatalf("juliano@small = %v, %v", d, ok)
	}
	// No scale in the session context: no scale rule matches.
	e := event.Event{Kind: event.GetSchema, Schema: "phone_net",
		Ctx: event.Context{User: "maria", Application: "pole_manager"}}
	engine.HandleEvent(e)
	if _, ok := engine.TakeCustomization(e); ok {
		t.Fatal("scale rules fired without a scale dimension")
	}
}

func TestWhereRuleNamesDistinct(t *testing.T) {
	a, _ := testAnalyzer(t)
	units, err := a.CompileSource(scaleDirectives)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, u := range units {
		for _, name := range u.RuleNames() {
			if seen[name] {
				t.Fatalf("duplicate rule name %q", name)
			}
			seen[name] = true
			if !strings.Contains(name, "scale=") {
				t.Fatalf("rule name %q lacks the scale dimension", name)
			}
		}
	}
}
