package custlang

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ruleanalysis"
	"repro/internal/spec"
)

// ErrSyntax is wrapped by every parse failure.
var ErrSyntax = errors.New("custlang: syntax error")

// Parse parses a source file containing one or more customization
// directives. Diagnostics carry line:col positions without a file name; use
// ParseFile to get file:line:col.
func Parse(src string) ([]Directive, error) {
	return ParseFile("", src)
}

// ParseFile parses a source file, threading the file name into every
// diagnostic position (and into the positions recorded on the AST).
func ParseFile(file, src string) ([]Directive, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	p := &parser{file: file, toks: toks}
	var out []Directive
	for !p.at(tokEOF) {
		d, err := p.directive()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrSyntax)
	}
	return out, nil
}

// ParseOne parses exactly one directive.
func ParseOne(src string) (Directive, error) {
	ds, err := Parse(src)
	if err != nil {
		return Directive{}, err
	}
	if len(ds) != 1 {
		return Directive{}, fmt.Errorf("%w: expected one directive, found %d", ErrSyntax, len(ds))
	}
	return ds[0], nil
}

type parser struct {
	file string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool {
	return p.peek().kind == k
}
func (p *parser) atKeyword(kw string) bool { return isKeyword(p.peek(), kw) }

// tokenPos converts a token's location to a diagnostic position.
func (p *parser) tokenPos(t token) ruleanalysis.Position {
	return ruleanalysis.Position{File: p.file, Line: t.line, Col: t.col}
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrSyntax, p.tokenPos(t), fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !isKeyword(t, kw) {
		return p.errf(t, "expected %q, found %s", kw, t)
	}
	return nil
}

func (p *parser) ident(what string) (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errf(t, "expected %s, found %s", what, t)
	}
	return t.text, nil
}

// reserved words that terminate identifier runs (from-clauses, attr lists).
var stopWords = map[string]bool{
	"for": true, "schema": true, "class": true, "display": true,
	"instances": true, "control": true, "presentation": true,
	"from": true, "using": true, "user": true, "category": true,
	"application": true, "attribute": true, "as": true, "where": true,
	"priority": true, "when": true,
}

func isStopWord(t token) bool {
	return t.kind != tokIdent || stopWords[strings.ToLower(t.text)]
}

func (p *parser) directive() (Directive, error) {
	start := p.peek()
	if err := p.expectKeyword("For"); err != nil {
		return Directive{}, err
	}
	d := Directive{Line: start.line, Pos: p.tokenPos(start)}
	// Context parts, in any order, at least one.
	parts := 0
	prioritySet := false
	for {
		switch {
		case p.atKeyword("user"):
			p.next()
			v, err := p.ident("user name")
			if err != nil {
				return d, err
			}
			if d.Context.User != "" {
				return d, p.errf(p.peek(), "duplicate user clause")
			}
			d.Context.User = v
		case p.atKeyword("category"):
			p.next()
			v, err := p.ident("category name")
			if err != nil {
				return d, err
			}
			if d.Context.Category != "" {
				return d, p.errf(p.peek(), "duplicate category clause")
			}
			d.Context.Category = v
		case p.atKeyword("application"):
			p.next()
			v, err := p.ident("application name")
			if err != nil {
				return d, err
			}
			if d.Context.Application != "" {
				return d, p.errf(p.peek(), "duplicate application clause")
			}
			d.Context.Application = v
		case p.atKeyword("where"):
			// Extension beyond Figure 3: extra context dimensions, per the
			// paper's note that context "can conceivably be extended to
			// other contextual data (e.g., geographic scale, time
			// framework)". Syntax: where <dimension> <value>.
			p.next()
			key, err := p.ident("context dimension")
			if err != nil {
				return d, err
			}
			val, err := p.ident("context value")
			if err != nil {
				return d, err
			}
			if d.Context.Extra == nil {
				d.Context.Extra = map[string]string{}
			}
			if _, dup := d.Context.Extra[key]; dup {
				return d, p.errf(p.peek(), "duplicate where clause for %q", key)
			}
			d.Context.Extra[key] = val
		case p.atKeyword("when"):
			// `when "<expr>"` restricts the directive by a condition
			// expression over event dimensions; like priority it does not
			// count as a context part. The expression is validated here so
			// a typo fails at parse time, not at install time.
			p.next()
			t := p.next()
			if t.kind != tokString {
				return d, p.errf(t, "expected quoted condition after when, found %s", t)
			}
			if d.When != "" {
				return d, p.errf(t, "duplicate when clause")
			}
			if _, err := ruleanalysis.ParseCond(t.text); err != nil {
				return d, p.errf(t, "bad when condition: %v", err)
			}
			if strings.TrimSpace(t.text) == "" {
				return d, p.errf(t, "empty when condition")
			}
			d.When = t.text
			continue
		case p.atKeyword("priority"):
			// "priority <n>" lets the author rank directives whose contexts
			// tie on specificity; it does not count as a context part.
			p.next()
			t := p.next()
			if t.kind != tokIdent {
				return d, p.errf(t, "expected priority value, found %s", t)
			}
			n, err := strconv.Atoi(t.text)
			if err != nil {
				return d, p.errf(t, "priority must be an integer, found %q", t.text)
			}
			if prioritySet {
				return d, p.errf(t, "duplicate priority clause")
			}
			d.Priority = n
			prioritySet = true
			continue
		default:
			if parts == 0 {
				return d, p.errf(p.peek(),
					"For clause needs at least one of user/category/application")
			}
			goto clauses
		}
		parts++
	}
clauses:
	if p.atKeyword("schema") {
		sc, err := p.schemaClause()
		if err != nil {
			return d, err
		}
		d.Schema = &sc
	}
	for p.atKeyword("class") {
		cc, err := p.classClause()
		if err != nil {
			return d, err
		}
		d.Classes = append(d.Classes, cc)
	}
	if d.Schema == nil && len(d.Classes) == 0 {
		return d, p.errf(p.peek(), "directive has no schema or class clause")
	}
	return d, nil
}

func (p *parser) schemaClause() (SchemaClause, error) {
	kw := p.next() // "schema"
	sc := SchemaClause{Pos: p.tokenPos(kw)}
	name, err := p.ident("schema name")
	if err != nil {
		return sc, err
	}
	sc.Name = name
	if err := p.expectKeyword("display"); err != nil {
		return sc, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return sc, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return sc, p.errf(t, "expected display mode, found %s", t)
	}
	mode, ok := spec.ParseSchemaDisplay(t.text)
	if !ok {
		return sc, p.errf(t, "unknown display mode %q (default, hierarchy, user-defined, Null)", t.text)
	}
	sc.Display = mode
	if mode == spec.DisplayUserDefined {
		w, err := p.ident("widget name after user-defined")
		if err != nil {
			return sc, err
		}
		sc.Widget = w
	}
	return sc, nil
}

func (p *parser) classClause() (ClassClause, error) {
	kw := p.next() // "class"
	cc := ClassClause{Pos: p.tokenPos(kw)}
	name, err := p.ident("class name")
	if err != nil {
		return cc, err
	}
	cc.Name = name
	if err := p.expectKeyword("display"); err != nil {
		return cc, err
	}
	for {
		switch {
		case p.atKeyword("control"):
			p.next()
			if err := p.expectKeyword("as"); err != nil {
				return cc, err
			}
			w, err := p.ident("control widget")
			if err != nil {
				return cc, err
			}
			if cc.Control != "" {
				return cc, p.errf(p.peek(), "duplicate control clause for class %s", cc.Name)
			}
			cc.Control = w
		case p.atKeyword("presentation"):
			p.next()
			if err := p.expectKeyword("as"); err != nil {
				return cc, err
			}
			f, err := p.ident("presentation format")
			if err != nil {
				return cc, err
			}
			if cc.Presentation != "" {
				return cc, p.errf(p.peek(), "duplicate presentation clause for class %s", cc.Name)
			}
			cc.Presentation = f
		case p.atKeyword("instances"):
			p.next()
			for p.atKeyword("display") {
				ac, err := p.attrClause()
				if err != nil {
					return cc, err
				}
				cc.Attrs = append(cc.Attrs, ac)
			}
			if len(cc.Attrs) == 0 {
				return cc, p.errf(p.peek(), "instances clause without display attribute clauses")
			}
		default:
			return cc, nil
		}
	}
}

func (p *parser) attrClause() (AttrClause, error) {
	kw := p.next() // "display"
	ac := AttrClause{Pos: p.tokenPos(kw)}
	if err := p.expectKeyword("attribute"); err != nil {
		return ac, err
	}
	attr, err := p.ident("attribute name")
	if err != nil {
		return ac, err
	}
	ac.Attr = attr
	if err := p.expectKeyword("as"); err != nil {
		return ac, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return ac, p.errf(t, "expected widget name or Null, found %s", t)
	}
	if strings.EqualFold(t.text, "null") {
		ac.Null = true
		return ac, nil
	}
	ac.Widget = t.text
	if p.atKeyword("from") {
		p.next()
		for !isStopWord(p.peek()) {
			src, err := p.source()
			if err != nil {
				return ac, err
			}
			ac.From = append(ac.From, src)
		}
		if len(ac.From) == 0 {
			return ac, p.errf(p.peek(), "from clause without sources")
		}
	}
	if p.atKeyword("using") {
		p.next()
		cb, err := p.ident("callback name")
		if err != nil {
			return ac, err
		}
		ac.Using = cb
		// Optional empty call parentheses, as the paper writes
		// "composed_text.notify()".
		if p.at(tokLParen) {
			p.next()
			if !p.at(tokRParen) {
				return ac, p.errf(p.peek(), "callback reference takes no arguments")
			}
			p.next()
		}
	}
	return ac, nil
}

// source parses "ident" or "ident(arg, arg)" (a method call).
func (p *parser) source() (spec.AttrSource, error) {
	name, err := p.ident("source")
	if err != nil {
		return spec.AttrSource{}, err
	}
	if !p.at(tokLParen) {
		return spec.AttrSource{Attr: name}, nil
	}
	p.next() // '('
	src := spec.AttrSource{Method: name}
	if !p.at(tokRParen) {
		for {
			arg, err := p.ident("method argument")
			if err != nil {
				return src, err
			}
			src.Args = append(src.Args, arg)
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
	}
	t := p.next()
	if t.kind != tokRParen {
		return src, p.errf(t, "expected ')', found %s", t)
	}
	return src, nil
}
