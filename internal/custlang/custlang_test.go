package custlang

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/active"
	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/geodb"
	"repro/internal/spec"
	"repro/internal/uikit"
)

// mustOpen replaces the removed geodb.MustOpen for tests: Open or fail the
// test. The library's open/recovery path returns errors instead of
// panicking, so a corrupt page file degrades gracefully in servers.
func mustOpen(t testing.TB, opts geodb.Options) *geodb.DB {
	t.Helper()
	db, err := geodb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// figure6 is the customization script of the paper's Figure 6, written in
// this package's concrete syntax. The paper's shorthand source paths
// (pole.material) are kept verbatim; the analyzer resolves them to
// pole_composition.pole_material.
const figure6 = `
For user juliano application pole_manager
schema phone_net display as Null
class Pole display
  control as poleWidget
  presentation as pointFormat
  instances
    display attribute pole_composition as composed_text
      from pole.material pole.diameter pole.height
      using composed_text.notify()
    display attribute pole_supplier as text
      from get_supplier_name(pole_supplier)
    display attribute pole_location as Null
`

func testAnalyzer(t testing.TB) (*Analyzer, *geodb.DB) {
	t.Helper()
	db := mustOpen(t, geodb.Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.DefineSchema("phone_net"))
	must(db.DefineClass("phone_net", catalog.Class{
		Name:  "Supplier",
		Attrs: []catalog.Field{catalog.F("name", catalog.Scalar(catalog.KindText))},
	}))
	must(db.DefineClass("phone_net", catalog.Class{
		Name: "Pole",
		Attrs: []catalog.Field{
			catalog.F("pole_type", catalog.Scalar(catalog.KindInteger)),
			catalog.F("pole_composition", catalog.TupleOf(
				catalog.F("pole_material", catalog.Scalar(catalog.KindText)),
				catalog.F("pole_diameter", catalog.Scalar(catalog.KindFloat)),
				catalog.F("pole_height", catalog.Scalar(catalog.KindFloat)),
			)),
			catalog.F("pole_supplier", catalog.RefTo("Supplier")),
			catalog.F("pole_location", catalog.Scalar(catalog.KindGeometry)),
			catalog.F("pole_picture", catalog.Scalar(catalog.KindBitmap)),
			catalog.F("pole_historic", catalog.Scalar(catalog.KindText)),
		},
		Methods: []catalog.Method{{Name: "get_supplier_name", Params: []string{"Supplier"}}},
	}))
	must(db.DefineClass("phone_net", catalog.Class{
		Name:  "Duct",
		Attrs: []catalog.Field{catalog.F("duct_path", catalog.Scalar(catalog.KindGeometry))},
	}))
	lib := uikit.Kernel()
	must(lib.Specialize("poleWidget", "button", func(w *uikit.Widget) { w.Kind = uikit.KindSlider }))
	must(lib.Specialize("composed_text", "text", nil))
	return &Analyzer{Cat: db.Catalog(), Lib: lib}, db
}

func TestParseFigure6(t *testing.T) {
	d, err := ParseOne(figure6)
	if err != nil {
		t.Fatal(err)
	}
	// Line (1): the context.
	if d.Context.User != "juliano" || d.Context.Application != "pole_manager" || d.Context.Category != "" {
		t.Fatalf("context = %+v", d.Context)
	}
	// Line (2): schema phone_net display as Null.
	if d.Schema == nil || d.Schema.Name != "phone_net" || d.Schema.Display != spec.DisplayNull {
		t.Fatalf("schema clause = %+v", d.Schema)
	}
	// Lines (3)-(5): class Pole with poleWidget / pointFormat.
	if len(d.Classes) != 1 {
		t.Fatalf("classes = %d", len(d.Classes))
	}
	cc := d.Classes[0]
	if cc.Name != "Pole" || cc.Control != "poleWidget" || cc.Presentation != "pointFormat" {
		t.Fatalf("class clause = %+v", cc)
	}
	// Lines (6)-(12): three attribute clauses.
	if len(cc.Attrs) != 3 {
		t.Fatalf("attr clauses = %d", len(cc.Attrs))
	}
	comp := cc.Attrs[0]
	if comp.Attr != "pole_composition" || comp.Widget != "composed_text" {
		t.Fatalf("composition clause = %+v", comp)
	}
	if len(comp.From) != 3 || comp.From[0].Attr != "pole.material" {
		t.Fatalf("from = %+v", comp.From)
	}
	if comp.Using != "composed_text.notify" {
		t.Fatalf("using = %q", comp.Using)
	}
	supplier := cc.Attrs[1]
	if supplier.Widget != "text" || len(supplier.From) != 1 ||
		supplier.From[0].Method != "get_supplier_name" ||
		len(supplier.From[0].Args) != 1 || supplier.From[0].Args[0] != "pole_supplier" {
		t.Fatalf("supplier clause = %+v", supplier)
	}
	if !cc.Attrs[2].Null || cc.Attrs[2].Attr != "pole_location" {
		t.Fatalf("location clause = %+v", cc.Attrs[2])
	}
}

func TestParseAllFigure3Constructs(t *testing.T) {
	// Exercise every construct of the grammar figure: all context parts,
	// every schema display mode, multiple classes, comments.
	src := `
# full-construct exercise
For user u category planners application app
schema s display as hierarchy
class A display
  control as button
class B display
  presentation as lineFormat
  instances
    display attribute x as text
    display attribute y as Null

For category ops
schema s display as user-defined fancy
class A display
  control as button

For application app2
schema s2 display as default
class C display
  presentation as regionFormat
`
	ds, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("directives = %d", len(ds))
	}
	if ds[0].Context.Category != "planners" || len(ds[0].Classes) != 2 {
		t.Fatalf("d0 = %+v", ds[0])
	}
	if ds[1].Schema.Display != spec.DisplayUserDefined || ds[1].Schema.Widget != "fancy" {
		t.Fatalf("d1 schema = %+v", ds[1].Schema)
	}
	if ds[2].Schema.Display != spec.DisplayDefault {
		t.Fatalf("d2 schema = %+v", ds[2].Schema)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, src := range []string{figure6, `
For category planners
schema s display as user-defined fancy
class A display
  control as w
  instances
    display attribute a as t
      from x y.z m(p, q)
      using cb
`} {
		d1, err := ParseOne(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := d1.String()
		d2, err := ParseOne(printed)
		if err != nil {
			t.Fatalf("re-parse of:\n%s\nfailed: %v", printed, err)
		}
		if d1.String() != d2.String() {
			t.Fatalf("round trip drift:\n%s\nvs\n%s", d1.String(), d2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`schema s display as default`, // missing For
		`For`,                         // empty context
		`For user`,                    // missing user name
		`For user u`,                  // no clauses
		`For user u user v schema s display as default`,                             // duplicate user
		`For user u schema s display as spinny`,                                     // bad mode
		`For user u schema s display as user-defined`,                               // missing widget
		`For user u class C`,                                                        // missing display
		`For user u class C display control poleWidget`,                             // missing as
		`For user u class C display instances`,                                      // empty instances
		`For user u class C display instances display attribute a`,                  // missing as
		`For user u class C display instances display attribute a as w from`,        // empty from
		`For user u class C display instances display attribute a as w using cb(x)`, // callback args
		`For user u class C display instances display attribute a as w from m(`,     // unclosed call
		`For user u schema s display as default ???`,                                // bad char
		`For user u class C display control as x control as y`,                      // duplicate control
	}
	for i, src := range cases {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("case %d: %v for %q", i, err, src)
		}
	}
}

func TestAnalyzeFigure6NormalizesShorthand(t *testing.T) {
	a, _ := testAnalyzer(t)
	d, err := ParseOne(figure6)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := a.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	from := norm.Classes[0].Attrs[0].From
	want := []string{
		"pole_composition.pole_material",
		"pole_composition.pole_diameter",
		"pole_composition.pole_height",
	}
	for i, w := range want {
		if from[i].Attr != w {
			t.Errorf("from[%d] = %q, want %q", i, from[i].Attr, w)
		}
	}
	// The original directive is untouched.
	if d.Classes[0].Attrs[0].From[0].Attr != "pole.material" {
		t.Fatal("Analyze mutated its input")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	a, _ := testAnalyzer(t)
	cases := []struct {
		src  string
		want string
	}{
		{`For user u schema nope display as default`, "unknown schema"},
		{`For user u schema phone_net display as user-defined ghost`, "not in the interface objects library"},
		{`For user u schema phone_net display as default class Ghost display control as button`, "unknown class"},
		{`For user u schema phone_net display as default class Pole display control as ghost`, "control widget"},
		{`For user u schema phone_net display as default class Pole display presentation as ghostFormat`, "unknown presentation format"},
		{`For user u schema phone_net display as default class Pole display instances display attribute ghost as text`, "unknown attribute"},
		{`For user u schema phone_net display as default class Pole display instances display attribute pole_type as ghost`, "not in the library"},
		{`For user u schema phone_net display as default class Pole display instances display attribute pole_type as text from nope`, "cannot resolve source path"},
		{`For user u schema phone_net display as default class Pole display instances display attribute pole_type as text from pole_type.x`, "not a tuple"},
		{`For user u schema phone_net display as default class Pole display instances display attribute pole_type as text from pole_composition.ghost`, "no field"},
		{`For user u schema phone_net display as default class Pole display instances display attribute pole_type as text from ghost_method(pole_type)`, "not declared"},
		{`For user u schema phone_net display as default class Pole display control as button class Pole display control as button`, "duplicate class clause"},
		{`For user u schema phone_net display as default class Pole display instances display attribute pole_type as text display attribute pole_type as Null`, "duplicate display attribute"},
		{`For user u class Pole display control as button`, "no schema clause and no default schema"},
	}
	for i, c := range cases {
		d, err := ParseOne(c.src)
		if err != nil {
			t.Fatalf("case %d failed to parse: %v", i, err)
		}
		_, err = a.Analyze(d)
		if !errors.Is(err, ErrSemantic) {
			t.Errorf("case %d: err = %v", i, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.want)
		}
	}
}

func TestAnalyzeCollectsMultipleErrors(t *testing.T) {
	a, _ := testAnalyzer(t)
	d, _ := ParseOne(`For user u schema phone_net display as default
class Pole display control as ghost1 presentation as ghostFmt`)
	_, err := a.Analyze(d)
	if err == nil || !strings.Contains(err.Error(), "ghost1") || !strings.Contains(err.Error(), "ghostFmt") {
		t.Fatalf("joined errors = %v", err)
	}
}

func TestDefaultSchemaFallback(t *testing.T) {
	a, _ := testAnalyzer(t)
	a.DefaultSchema = "phone_net"
	d, _ := ParseOne(`For user u class Pole display control as poleWidget`)
	if _, err := a.Analyze(d); err != nil {
		t.Fatal(err)
	}
}

func TestCompileFigure6(t *testing.T) {
	a, _ := testAnalyzer(t)
	compiled, err := a.CompileSource(figure6)
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled) != 1 {
		t.Fatalf("units = %d", len(compiled))
	}
	rules := compiled[0].Rules
	// The paper: "This customization is used in the generation of several
	// rules" — here exactly three: schema (R1), class (R2), instance.
	if len(rules) != 3 {
		t.Fatalf("rules = %v", compiled[0].RuleNames())
	}
	r1, r2, r3 := rules[0], rules[1], rules[2]
	if r1.On != event.GetSchema || r1.Schema != "phone_net" {
		t.Fatalf("R1 = %+v", r1)
	}
	if r1.Context.User != "juliano" || r1.Context.Application != "pole_manager" {
		t.Fatalf("R1 context = %v", r1.Context)
	}
	if r2.On != event.GetClass || r2.Class != "Pole" {
		t.Fatalf("R2 = %+v", r2)
	}
	if r3.On != event.GetValue || r3.Class != "Pole" {
		t.Fatalf("R3 = %+v", r3)
	}
	// Actions produce the expected customizations.
	c1, err := r1.Customize(event.Event{})
	if err != nil || c1.Level != spec.LevelSchema || c1.Schema.Display != spec.DisplayNull {
		t.Fatalf("R1 action = %+v, %v", c1, err)
	}
	if len(c1.Schema.Classes) != 1 || c1.Schema.Classes[0] != "Pole" {
		t.Fatalf("R1 classes = %v (Null schema must hand the builder its class list)", c1.Schema.Classes)
	}
	c2, _ := r2.Customize(event.Event{})
	if c2.Class.Control != "poleWidget" || c2.Class.Presentation != "pointFormat" {
		t.Fatalf("R2 action = %+v", c2)
	}
	c3, _ := r3.Customize(event.Event{})
	if len(c3.Instance.Attrs) != 3 {
		t.Fatalf("R3 attrs = %+v", c3.Instance.Attrs)
	}
	if c3.Instance.Attrs[0].From[0].Attr != "pole_composition.pole_material" {
		t.Fatalf("R3 normalized from = %+v", c3.Instance.Attrs[0].From)
	}
	if !c3.Instance.Attrs[2].Null {
		t.Fatal("pole_location must compile to Null")
	}
}

func TestCompileSkipsEmptyLevels(t *testing.T) {
	a, _ := testAnalyzer(t)
	// Class clause without control/presentation/instances contributes no
	// class rule; schema-only directives compile to one rule.
	compiled, err := a.CompileSource(`For user u schema phone_net display as hierarchy class Pole display instances display attribute pole_location as Null`)
	if err != nil {
		t.Fatal(err)
	}
	rules := compiled[0].Rules
	if len(rules) != 2 {
		t.Fatalf("rules = %v", compiled[0].RuleNames())
	}
}

func TestInstallIntoEngine(t *testing.T) {
	a, _ := testAnalyzer(t)
	engine := active.NewEngine()
	units, err := a.Install(engine, figure6)
	if err != nil {
		t.Fatal(err)
	}
	if engine.RuleCount() != 3 {
		t.Fatalf("engine rules = %d", engine.RuleCount())
	}
	_ = units
	// End-to-end: the right customization surfaces for the right context.
	ctx := event.Context{User: "juliano", Application: "pole_manager"}
	e := event.Event{Kind: event.GetClass, Schema: "phone_net", Class: "Pole", Ctx: ctx}
	if err := engine.HandleEvent(e); err != nil {
		t.Fatal(err)
	}
	c, ok := engine.TakeCustomization(e)
	if !ok || c.Class.Control != "poleWidget" {
		t.Fatalf("customization = %+v, %v", c, ok)
	}
	// Wrong context: nothing fires.
	e2 := e
	e2.Ctx = event.Context{User: "maria", Application: "pole_manager"}
	engine.HandleEvent(e2)
	if _, ok := engine.TakeCustomization(e2); ok {
		t.Fatal("rule fired for wrong user")
	}
}

func TestInstallRollsBackOnError(t *testing.T) {
	a, _ := testAnalyzer(t)
	engine := active.NewEngine()
	if _, err := a.Install(engine, figure6); err != nil {
		t.Fatal(err)
	}
	// Installing the same source again collides on rule names and must
	// leave the engine exactly as before.
	before := engine.RuleCount()
	if _, err := a.Install(engine, figure6); err == nil {
		t.Fatal("duplicate install should fail")
	}
	if engine.RuleCount() != before {
		t.Fatalf("rollback failed: %d rules, want %d", engine.RuleCount(), before)
	}
}

func TestStoreAndLoadDirectives(t *testing.T) {
	a, db := testAnalyzer(t)
	if err := a.SaveDirectives(db, "pole_manager", figure6); err != nil {
		t.Fatal(err)
	}
	// Invalid sources are refused.
	if err := a.SaveDirectives(db, "bad", `For user u schema ghost display as default`); err == nil {
		t.Fatal("invalid directive stored")
	}
	stored, err := LoadDirectives(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 || !strings.Contains(stored["pole_manager"], "poleWidget") {
		t.Fatalf("stored = %v", stored)
	}
	// Replacing under the same name does not duplicate.
	if err := a.SaveDirectives(db, "pole_manager", figure6); err != nil {
		t.Fatal(err)
	}
	stored, _ = LoadDirectives(db)
	if len(stored) != 1 {
		t.Fatalf("after resave: %d", len(stored))
	}
	// InstallStored compiles everything onto a fresh engine.
	engine := active.NewEngine()
	n, err := a.InstallStored(db, engine)
	if err != nil || n != 3 || engine.RuleCount() != 3 {
		t.Fatalf("InstallStored = %d, %v (engine %d)", n, err, engine.RuleCount())
	}
}

func TestLoadDirectivesEmptyDB(t *testing.T) {
	_, db := testAnalyzer(t)
	stored, err := LoadDirectives(db)
	if err != nil || len(stored) != 0 {
		t.Fatalf("empty load = %v, %v", stored, err)
	}
}
