// Package custlang implements the customization language of §3.4 (Figure 3):
// a declarative notation in which the application designer describes, per
// context, how the generic interface is customized. The package provides the
// lexer, parser, AST, semantic analysis against the database catalog and the
// interface objects library, and the compiler producing active-database
// customization rules — the compiler the paper lists as work in progress
// ("we are now working on the implementation of the compiler for creating
// rules from a declarative specification"), implemented here in full.
//
// The concrete syntax follows the paper's Figure 6 example:
//
//	For user juliano application pole_manager
//	schema phone_net display as Null
//	class Pole display
//	  control as poleWidget
//	  presentation as pointFormat
//	  instances
//	    display attribute pole_composition as composed_text
//	      from pole.material pole.diameter pole.height
//	      using composed_text.notify()
//	    display attribute pole_supplier as text
//	      from get_supplier_name(pole_supplier)
//	    display attribute pole_location as Null
package custlang

import (
	"fmt"
	"strings"

	"repro/internal/ruleanalysis"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes a directive. Identifiers may contain letters, digits,
// underscores, dots and hyphens (widget names like "user-defined" and
// dotted paths like "pole.material" and "composed_text.notify" are single
// tokens). '#' starts a comment running to end of line.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.' || c == '-' || c == ':'
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		default:
			goto body
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil
body:
	line, col := l.line, l.col
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case c == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case c == ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case c == '"':
		// Quoted string, used by the when clause to carry a condition
		// expression verbatim. No escapes; a newline inside is an error.
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				pos := ruleanalysis.Position{File: l.file, Line: line, Col: col}
				return token{}, fmt.Errorf("%s: newline in quoted string", pos)
			}
			l.advance()
		}
		if l.pos >= len(l.src) {
			pos := ruleanalysis.Position{File: l.file, Line: line, Col: col}
			return token{}, fmt.Errorf("%s: unterminated quoted string", pos)
		}
		text := l.src[start:l.pos]
		l.advance() // closing quote
		return token{kind: tokString, text: text, line: line, col: col}, nil
	case isIdentByte(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	default:
		pos := ruleanalysis.Position{File: l.file, Line: line, Col: col}
		return token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
	}
}

// lexAll tokenizes the entire input. file (may be empty) prefixes positions
// in diagnostics.
func lexAll(file, src string) ([]token, error) {
	l := newLexer(file, src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

// keyword matching is case-insensitive for keywords while identifiers keep
// their case.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
