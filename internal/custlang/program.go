package custlang

import (
	"fmt"

	"repro/internal/ruleanalysis"
	"repro/internal/spec"
)

// This file holds the whole-program checks: properties of a directive file
// as a unit, above the single-directive validation the analyzer does and
// below the installed-rule analysis the engine's CheckSet does. They catch
// the authoring mistakes a per-directive pass cannot see — the same context
// customized twice, or customized twice *differently*.

// directiveLabel names a directive for diagnostics: its context, which is
// how an author thinks of it.
func directiveLabel(d Directive) string {
	if d.When != "" {
		return fmt.Sprintf("directive %s when %q (line %d)", d.Context, d.When, d.Line)
	}
	return fmt.Sprintf("directive %s (line %d)", d.Context, d.Line)
}

// whensDisjoint reports whether the two directives' when clauses are
// PROVABLY co-unsatisfiable under their (identical) context — the
// expression-level escape hatch from the duplicate-context and conflict
// checks: `when "scale <= 10000"` and `when "scale > 10000"` layer two
// presentations over one context without ambiguity. An unparsable when is
// treated as opaque (not disjoint); CheckProgram reports it separately.
func whensDisjoint(a, b Directive) bool {
	if a.When == "" && b.When == "" {
		return false
	}
	ca, errA := ruleanalysis.ParseCond(a.When)
	cb, errB := ruleanalysis.ParseCond(b.When)
	if errA != nil || errB != nil {
		return false
	}
	pins := ruleanalysis.ContextCond(a.Context.User, a.Context.Category, a.Context.Application, a.Context.Extra)
	overlaps, exact := ruleanalysis.Overlaps(
		ruleanalysis.And(ca, pins), ruleanalysis.And(cb, pins))
	return exact && !overlaps
}

// sameContext reports whether two contexts are identical patterns (not
// merely overlapping).
func sameContext(a, b Directive) bool {
	x, y := a.Context, b.Context
	if x.User != y.User || x.Category != y.Category || x.Application != y.Application {
		return false
	}
	if len(x.Extra) != len(y.Extra) {
		return false
	}
	for k, v := range x.Extra {
		if y.Extra[k] != v {
			return false
		}
	}
	return true
}

// CheckProgram runs the whole-program checks over a parsed directive file
// and returns the findings sorted for stable output:
//
//   - duplicate-context (warning): two directives with an identical context
//     and equal priority — every rule pair they generate at the same level
//     is an ambiguity waiting to happen;
//   - conflict (error): two same-context, same-priority directives that
//     prescribe *different* presentations for the same target (schema
//     display mode, class control/presentation, or attribute widget) — the
//     engine would pick one by the name tiebreak and silently drop the
//     other.
//
// Directives with the same context but different priorities layer cleanly
// (the higher priority wins everywhere) and are not reported, as are
// same-context directives whose when clauses are provably disjoint (no
// event satisfies both, so their rules never compete). An unparsable when
// on a programmatically built directive is reported as cond-syntax (the
// parser rejects them in source files before they get here).
func CheckProgram(ds []Directive) []ruleanalysis.Finding {
	var fs []ruleanalysis.Finding
	for i := range ds {
		if _, err := ruleanalysis.ParseCond(ds[i].When); err != nil {
			fs = append(fs, ruleanalysis.Finding{
				Check:    ruleanalysis.CheckCondSyntax,
				Severity: ruleanalysis.SeverityError,
				Pos:      ds[i].Pos,
				Message: fmt.Sprintf(
					"%s has an unparsable when condition: %v", directiveLabel(ds[i]), err),
			})
		}
	}
	for i := range ds {
		for j := i + 1; j < len(ds); j++ {
			a, b := ds[i], ds[j]
			if !sameContext(a, b) || a.Priority != b.Priority {
				continue
			}
			if whensDisjoint(a, b) {
				continue
			}
			conflicts := directiveConflicts(a, b)
			if len(conflicts) == 0 {
				fs = append(fs, ruleanalysis.Finding{
					Check:    ruleanalysis.CheckDuplicateContext,
					Severity: ruleanalysis.SeverityWarning,
					Pos:      b.Pos,
					Message: fmt.Sprintf(
						"%s repeats the context of %s with equal priority; give one a priority clause or merge them",
						directiveLabel(b), directiveLabel(a)),
				})
				continue
			}
			for _, c := range conflicts {
				fs = append(fs, ruleanalysis.Finding{
					Check:    ruleanalysis.CheckConflict,
					Severity: ruleanalysis.SeverityError,
					Pos:      b.Pos,
					Message: fmt.Sprintf(
						"%s conflicts with %s: %s",
						directiveLabel(b), directiveLabel(a), c),
				})
			}
		}
	}
	ruleanalysis.Sort(fs)
	return fs
}

// directiveConflicts lists the concrete disagreements between two
// same-context directives: targets both customize, with different outcomes.
func directiveConflicts(a, b Directive) []string {
	var out []string
	if a.Schema != nil && b.Schema != nil && a.Schema.Name == b.Schema.Name {
		if a.Schema.Display != b.Schema.Display || a.Schema.Widget != b.Schema.Widget {
			out = append(out, fmt.Sprintf(
				"schema %s displayed as %s vs %s",
				a.Schema.Name, renderDisplay(*b.Schema), renderDisplay(*a.Schema)))
		}
	}
	for _, ca := range a.Classes {
		for _, cb := range b.Classes {
			if ca.Name != cb.Name {
				continue
			}
			if ca.Control != "" && cb.Control != "" && ca.Control != cb.Control {
				out = append(out, fmt.Sprintf(
					"class %s control %q vs %q", ca.Name, cb.Control, ca.Control))
			}
			if ca.Presentation != "" && cb.Presentation != "" && ca.Presentation != cb.Presentation {
				out = append(out, fmt.Sprintf(
					"class %s presentation %q vs %q", ca.Name, cb.Presentation, ca.Presentation))
			}
			for _, aa := range ca.Attrs {
				for _, ab := range cb.Attrs {
					if aa.Attr != ab.Attr {
						continue
					}
					if aa.Null != ab.Null || aa.Widget != ab.Widget {
						out = append(out, fmt.Sprintf(
							"class %s attribute %s shown as %s vs %s",
							ca.Name, aa.Attr, renderAttr(ab), renderAttr(aa)))
					}
				}
			}
		}
	}
	return out
}

func renderDisplay(sc SchemaClause) string {
	if sc.Display == spec.DisplayUserDefined {
		return fmt.Sprintf("%s %s", sc.Display, sc.Widget)
	}
	return sc.Display.String()
}

func renderAttr(ac AttrClause) string {
	if ac.Null {
		return "Null"
	}
	return ac.Widget
}
