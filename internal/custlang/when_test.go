package custlang

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/active"
	"repro/internal/event"
	"repro/internal/ruleanalysis"
	"repro/internal/spec"
)

// The when-clause extension: expression-level conditions beyond the
// context pattern, compiled into rule Conds the engine enforces and the
// static checks reason about.

// zoomDirectives layers two presentations over ONE context, split by a
// provably disjoint zoom condition instead of by priority.
const zoomDirectives = `
For application pole_manager when "zoom <= 10"
schema phone_net display as default

For application pole_manager when "zoom > 10"
schema phone_net display as hierarchy
`

func TestWhenClauseParsesAndPrints(t *testing.T) {
	d, err := ParseOne(`For user u when "zoom > 10 && scale == small" priority 2
schema phone_net display as default`)
	if err != nil {
		t.Fatal(err)
	}
	if d.When != `zoom > 10 && scale == small` {
		t.Fatalf("When = %q", d.When)
	}
	if d.Priority != 2 {
		t.Fatalf("Priority = %d", d.Priority)
	}
	printed := d.String()
	if !strings.Contains(printed, `when "zoom > 10 && scale == small"`) {
		t.Fatalf("printed = %q", printed)
	}
	back, err := ParseOne(printed)
	if err != nil || back.String() != printed {
		t.Fatalf("round trip: %v\n%q\n%q", err, printed, back.String())
	}
}

func TestWhenClauseErrors(t *testing.T) {
	bad := []string{
		`For user u when zoom schema s display as default`,                   // unquoted
		`For user u when "zoom >" schema s display as default`,               // bad expression
		`For user u when "" schema s display as default`,                     // empty
		`For user u when "a == 1" when "b == 2" schema s display as default`, // duplicate
		`For user u when "zoom
> 1" schema s display as default`, // newline in string
		`For user u when "zoom > 1 schema s display as default`, // unterminated
	}
	for i, src := range bad {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("case %d accepted: %v", i, err)
		}
	}
}

func TestWhenReachesCompiledRules(t *testing.T) {
	a, _ := testAnalyzer(t)
	units, err := a.CompileSource(zoomDirectives)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("units = %d", len(units))
	}
	for i, want := range []string{`zoom <= 10`, `zoom > 10`} {
		for _, r := range units[i].Rules {
			if r.Cond != want {
				t.Fatalf("unit %d rule %q Cond = %q, want %q", i, r.Name, r.Cond, want)
			}
		}
	}
}

func TestWhenDependentSelection(t *testing.T) {
	a, _ := testAnalyzer(t)
	engine := active.NewEngine()
	a.Strict = true
	if _, err := a.Install(engine, zoomDirectives); err != nil {
		t.Fatal(err)
	}
	probe := func(zoom string) (spec.SchemaDisplay, bool) {
		e := event.Event{
			Kind: event.GetSchema, Schema: "phone_net",
			Ctx: event.Context{
				Application: "pole_manager",
				Extra:       map[string]string{"zoom": zoom},
			},
		}
		if err := engine.HandleEvent(e); err != nil {
			t.Fatal(err)
		}
		c, ok := engine.TakeCustomization(e)
		return c.Schema.Display, ok
	}
	if d, ok := probe("4"); !ok || d != spec.DisplayDefault {
		t.Fatalf("zoom=4: %v, %v", d, ok)
	}
	if d, ok := probe("12"); !ok || d != spec.DisplayHierarchy {
		t.Fatalf("zoom=12: %v, %v", d, ok)
	}
	// No zoom dimension: neither condition holds — no customization.
	e := event.Event{Kind: event.GetSchema, Schema: "phone_net",
		Ctx: event.Context{Application: "pole_manager"}}
	if err := engine.HandleEvent(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := engine.TakeCustomization(e); ok {
		t.Fatal("zoom rules fired without a zoom dimension")
	}
}

func TestCheckProgramWhenAware(t *testing.T) {
	parse := func(src string) []Directive {
		t.Helper()
		ds, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}

	// Disjoint whens over one context: clean.
	fs := CheckProgram(parse(zoomDirectives))
	if len(fs) != 0 {
		t.Fatalf("disjoint whens: findings = %+v", fs)
	}

	// Overlapping whens (zoom > 0 and zoom > 10 are co-satisfiable at 12):
	// still a duplicate context.
	fs = CheckProgram(parse(`
For application pole_manager when "zoom > 0"
schema phone_net display as default

For application pole_manager when "zoom > 10"
schema phone_net display as default
`))
	if len(fs) != 1 || fs[0].Check != ruleanalysis.CheckDuplicateContext {
		t.Fatalf("overlapping whens: findings = %+v", fs)
	}

	// Overlapping whens with disagreeing presentations: conflict error.
	fs = CheckProgram(parse(`
For application pole_manager when "zoom > 0"
schema phone_net display as default

For application pole_manager when "zoom > 10"
schema phone_net display as hierarchy
`))
	if len(fs) != 1 || fs[0].Check != ruleanalysis.CheckConflict || fs[0].Severity != ruleanalysis.SeverityError {
		t.Fatalf("conflicting whens: findings = %+v", fs)
	}
	if !strings.Contains(fs[0].Message, `when "zoom > 10"`) {
		t.Errorf("conflict label should show the when clause: %s", fs[0].Message)
	}

	// An unparsable when on a hand-built directive is reported, not
	// silently treated as disjoint.
	ds := parse(`For user u
schema phone_net display as default`)
	ds[0].When = `zoom >`
	fs = CheckProgram(ds)
	if len(fs) != 1 || fs[0].Check != ruleanalysis.CheckCondSyntax {
		t.Fatalf("bad when: findings = %+v", fs)
	}
}

// TestWhenShadowingCaughtBySatisfiability is the acceptance-criteria case:
// a directive whose when condition implies a same-context, higher-priority
// directive's weaker condition is dead — PR 3's shape-only check could not
// see this (the conditions differ, so the generated rules are not
// identical patterns; only implication reasoning finds the shadow).
func TestWhenShadowingCaughtBySatisfiability(t *testing.T) {
	a, _ := testAnalyzer(t)
	engine := active.NewEngine()
	units, err := a.CompileSourceFile("shadow.cust", `
For application pole_manager when "zoom > 10"
schema phone_net display as default

For application pole_manager when "zoom > 0" priority 5
schema phone_net display as hierarchy
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		for _, r := range u.Rules {
			if err := engine.AddRule(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	fs := engine.CheckSet()
	var shadow *ruleanalysis.Finding
	for i := range fs {
		if fs[i].Check == ruleanalysis.CheckShadowing {
			shadow = &fs[i]
		}
	}
	if shadow == nil {
		t.Fatalf("satisfiability shadowing missed: findings = %+v", fs)
	}
	if !strings.Contains(shadow.Message, "condition is implied") {
		t.Errorf("message = %s", shadow.Message)
	}
}
