package hardwired

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/geodb"
	"repro/internal/uikit"
	"repro/internal/workload"
)

// mustOpen replaces the removed geodb.MustOpen for tests: Open or fail the
// test. The library's open/recovery path returns errors instead of
// panicking, so a corrupt page file degrades gracefully in servers.
func mustOpen(t testing.TB, opts geodb.Options) *geodb.DB {
	t.Helper()
	db, err := geodb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func testNet(t testing.TB) (*geodb.DB, *workload.PhoneNet) {
	t.Helper()
	db := mustOpen(t, geodb.Options{})
	net, err := workload.BuildPhoneNet(db, workload.PhoneNetOptions{Seed: 5, ZonesPerSide: 1, PolesPerZone: 8})
	if err != nil {
		t.Fatal(err)
	}
	return db, net
}

func TestGenericVariantMatchesDefaultShape(t *testing.T) {
	db, net := testNet(t)
	u := New(db, VariantGeneric)
	ctx := event.Context{User: "x"}
	info, _ := db.GetSchema(ctx, workload.SchemaName)
	win, err := u.SchemaWindow(info)
	if err != nil {
		t.Fatal(err)
	}
	if win.Prop("visible") != "true" || len(win.Find("classes").Items) != 4 {
		t.Fatalf("generic schema window: %+v", win.Find("classes"))
	}
	cinfo, _ := db.GetClass(ctx, workload.SchemaName, "Pole")
	instances, _ := db.Select(workload.SchemaName, "Pole", nil)
	cwin, err := u.ClassWindow(cinfo, instances)
	if err != nil {
		t.Fatal(err)
	}
	if len(cwin.Find("map").Shapes) != len(net.Poles) {
		t.Fatal("class window shapes")
	}
	if cwin.Find("class_widget") == nil {
		t.Fatal("generic class widget missing")
	}
	in, _ := db.GetValue(ctx, net.Poles[0])
	iwin, err := u.InstanceWindow(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(iwin.Find("attributes").Children) != 6 {
		t.Fatalf("generic instance panels = %d", len(iwin.Find("attributes").Children))
	}
}

func TestPoleManagerVariantMatchesFigure7(t *testing.T) {
	db, net := testNet(t)
	u := New(db, VariantPoleManager)
	ctx := event.Context{User: "juliano"}
	info, _ := db.GetSchema(ctx, workload.SchemaName)
	win, _ := u.SchemaWindow(info)
	if win.Prop("visible") != "false" {
		t.Fatal("pole-manager schema window must be hidden")
	}
	cinfo, _ := db.GetClass(ctx, workload.SchemaName, "Pole")
	instances, _ := db.Select(workload.SchemaName, "Pole", nil)
	cwin, _ := u.ClassWindow(cinfo, instances)
	if cwin.Find("poleWidget") == nil || cwin.Find("poleWidget").Kind != uikit.KindSlider {
		t.Fatal("hand-coded slider missing")
	}
	in, _ := db.GetValue(ctx, net.Poles[0])
	iwin, err := u.InstanceWindow(in)
	if err != nil {
		t.Fatal(err)
	}
	attrs := iwin.Find("attributes")
	if len(attrs.Children) != 5 {
		t.Fatalf("pole-manager instance panels = %d, want 5", len(attrs.Children))
	}
	if iwin.Find("attr:pole_location") != nil {
		t.Fatal("location must be suppressed")
	}
	comp := iwin.Find("attr:pole_composition").Find("composed")
	if comp == nil || !strings.Contains(comp.Prop("value"), " ") {
		t.Fatalf("composed panel = %+v", comp)
	}
	sup := iwin.Find("attr:pole_supplier").Find("supplier")
	if sup == nil || !strings.HasPrefix(sup.Prop("value"), "Supplier-") {
		t.Fatalf("supplier panel = %+v", sup)
	}
	// Non-Pole classes fall back to the generic code path.
	dinfo, _ := db.GetClass(ctx, workload.SchemaName, "Duct")
	dinst, _ := db.Select(workload.SchemaName, "Duct", nil)
	dwin, _ := u.ClassWindow(dinfo, dinst)
	if dwin.Find("class_widget") == nil {
		t.Fatal("non-Pole class should use the generic window")
	}
}

func TestUnknownVariant(t *testing.T) {
	db, _ := testNet(t)
	u := New(db, Variant(99))
	ctx := event.Context{}
	info, _ := db.GetSchema(ctx, workload.SchemaName)
	if _, err := u.SchemaWindow(info); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestCostModels(t *testing.T) {
	hw := HardwiredCost(4000)
	dir := DirectiveCost(len(workload.Figure6Source))
	if !hw.RebuildRequired || dir.RebuildRequired {
		t.Fatal("rebuild flags")
	}
	if hw.ArtifactsTouched <= dir.ArtifactsTouched {
		t.Fatal("hardwired must touch more artifacts")
	}
	if hw.DispatchEdits == 0 || dir.DispatchEdits != 0 {
		t.Fatal("dispatch edits")
	}
}
