// Package hardwired implements the conventional baseline the paper compares
// against (§1, §3.5): a GIS interface where "each application interface is
// hardwired into the gis interface" — specific code per window kind per
// application variant, no interface objects library, no active rules. It
// exists so the benchmarks can quantify the paper's two claims:
//
//   - B2 (transparency/overhead): how much window-build latency the dynamic,
//     rule-driven path costs over direct construction;
//   - B3 (customization cost): how many artifacts a programmer must write
//     or modify — and whether a rebuild is needed — to support a new
//     context, hardwired versus the customization language.
//
// The duplication between the variants below is deliberate: it is the
// phenomenon being measured. Each variant is what a programmer would have
// written and shipped as separate interface code.
package hardwired

import (
	"fmt"
	"strings"

	"repro/internal/geodb"
	"repro/internal/uikit"
)

// Variant selects which hardwired application interface runs. Adding a
// variant means writing new window functions and extending every dispatch
// switch below — the modification cost the paper's approach eliminates.
type Variant uint8

// The shipped variants.
const (
	// VariantGeneric is the default look and feel.
	VariantGeneric Variant = iota + 1
	// VariantPoleManager is the pole-manager customization of §4,
	// hand-coded: hidden schema window, slider class widget, composed
	// instance attributes, suppressed location.
	VariantPoleManager
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantGeneric:
		return "generic"
	case VariantPoleManager:
		return "pole_manager"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// UI is a hardwired interface bound to one variant at build time.
type UI struct {
	db      *geodb.DB
	variant Variant
}

// New returns a hardwired UI for the variant.
func New(db *geodb.DB, v Variant) *UI { return &UI{db: db, variant: v} }

// SchemaWindow builds the schema window the variant's code dictates.
func (u *UI) SchemaWindow(info geodb.SchemaInfo) (*uikit.Widget, error) {
	switch u.variant {
	case VariantGeneric:
		return u.genericSchemaWindow(info), nil
	case VariantPoleManager:
		return u.poleManagerSchemaWindow(info), nil
	default:
		return nil, fmt.Errorf("hardwired: unknown variant %v", u.variant)
	}
}

func (u *UI) genericSchemaWindow(info geodb.SchemaInfo) *uikit.Widget {
	win := uikit.New(uikit.KindWindow, "schema:"+info.Name)
	win.SetProp("title", "Schema "+info.Name)
	win.SetProp("window_type", "Schema")
	win.SetProp("visible", "true")
	control := uikit.New(uikit.KindPanel, "control").Add(
		uikit.New(uikit.KindButton, "open").SetProp("label", "Open"),
		uikit.New(uikit.KindButton, "quit").SetProp("label", "Quit"),
	)
	list := uikit.New(uikit.KindList, "classes")
	list.Items = append(list.Items, info.Classes...)
	win.Add(control, uikit.New(uikit.KindPanel, "display").Add(list))
	return win
}

func (u *UI) poleManagerSchemaWindow(info geodb.SchemaInfo) *uikit.Widget {
	// Hand-coded equivalent of the Figure 6 schema clause: window exists
	// but is never shown.
	win := uikit.New(uikit.KindWindow, "schema:"+info.Name)
	win.SetProp("title", "Schema "+info.Name)
	win.SetProp("window_type", "Schema")
	win.SetProp("visible", "false")
	list := uikit.New(uikit.KindList, "classes")
	list.Items = append(list.Items, info.Classes...)
	win.Add(
		uikit.New(uikit.KindPanel, "control"),
		uikit.New(uikit.KindPanel, "display").Add(list),
	)
	return win
}

// ClassWindow builds the class window for the variant.
func (u *UI) ClassWindow(info geodb.ClassInfo, instances []geodb.Instance) (*uikit.Widget, error) {
	switch u.variant {
	case VariantGeneric:
		return u.genericClassWindow(info, instances), nil
	case VariantPoleManager:
		if info.Class.Name == "Pole" {
			return u.poleManagerClassWindow(info, instances), nil
		}
		return u.genericClassWindow(info, instances), nil
	default:
		return nil, fmt.Errorf("hardwired: unknown variant %v", u.variant)
	}
}

func (u *UI) genericClassWindow(info geodb.ClassInfo, instances []geodb.Instance) *uikit.Widget {
	win := uikit.New(uikit.KindWindow, "classset:"+info.Class.Name)
	win.SetProp("title", "Class set "+info.Class.Name)
	win.SetProp("window_type", "Class set")
	win.SetProp("visible", "true")
	control := uikit.New(uikit.KindPanel, "control").Add(
		uikit.New(uikit.KindMenu, "operations").Add(
			uikit.New(uikit.KindMenuItem, "zoom").SetProp("label", "Zoom"),
			uikit.New(uikit.KindMenuItem, "select").SetProp("label", "Select"),
			uikit.New(uikit.KindMenuItem, "close").SetProp("label", "Close"),
		),
		uikit.New(uikit.KindButton, "class_widget").SetProp("label", info.Class.Name),
	)
	schemaList := uikit.New(uikit.KindList, "attributes")
	for _, a := range info.Attrs {
		schemaList.Items = append(schemaList.Items, fmt.Sprintf("%s: %s", a.Name, a.Type))
	}
	control.Add(schemaList)
	area := uikit.New(uikit.KindDrawingArea, "map")
	for _, in := range instances {
		g, ok := in.Geometry()
		if !ok {
			continue
		}
		area.Shapes = append(area.Shapes, uikit.Shape{
			OID:    uint64(in.OID),
			Geom:   g,
			Label:  fmt.Sprintf("%s-%d", strings.ToLower(info.Class.Name), in.OID),
			Format: "pointFormat",
		})
	}
	win.Add(control, uikit.New(uikit.KindPanel, "display").Add(area))
	return win
}

func (u *UI) poleManagerClassWindow(info geodb.ClassInfo, instances []geodb.Instance) *uikit.Widget {
	// Duplicated from genericClassWindow with the pole-manager deltas
	// hand-applied — the maintenance burden §1 describes.
	win := uikit.New(uikit.KindWindow, "classset:"+info.Class.Name)
	win.SetProp("title", "Class set "+info.Class.Name)
	win.SetProp("window_type", "Class set")
	win.SetProp("visible", "true")
	slider := uikit.New(uikit.KindSlider, "poleWidget").SetProp("class", info.Class.Name)
	control := uikit.New(uikit.KindPanel, "control").Add(
		uikit.New(uikit.KindMenu, "operations").Add(
			uikit.New(uikit.KindMenuItem, "zoom").SetProp("label", "Zoom"),
			uikit.New(uikit.KindMenuItem, "select").SetProp("label", "Select"),
			uikit.New(uikit.KindMenuItem, "close").SetProp("label", "Close"),
		),
		slider,
	)
	schemaList := uikit.New(uikit.KindList, "attributes")
	for _, a := range info.Attrs {
		schemaList.Items = append(schemaList.Items, fmt.Sprintf("%s: %s", a.Name, a.Type))
	}
	control.Add(schemaList)
	area := uikit.New(uikit.KindDrawingArea, "map")
	for _, in := range instances {
		g, ok := in.Geometry()
		if !ok {
			continue
		}
		area.Shapes = append(area.Shapes, uikit.Shape{
			OID:    uint64(in.OID),
			Geom:   g,
			Label:  fmt.Sprintf("pole-%d", in.OID),
			Format: "pointFormat",
		})
	}
	win.Add(control, uikit.New(uikit.KindPanel, "display").Add(area))
	return win
}

// InstanceWindow builds the instance window for the variant.
func (u *UI) InstanceWindow(in geodb.Instance) (*uikit.Widget, error) {
	switch u.variant {
	case VariantGeneric:
		return u.genericInstanceWindow(in), nil
	case VariantPoleManager:
		if in.Class == "Pole" {
			return u.poleManagerInstanceWindow(in)
		}
		return u.genericInstanceWindow(in), nil
	default:
		return nil, fmt.Errorf("hardwired: unknown variant %v", u.variant)
	}
}

func (u *UI) genericInstanceWindow(in geodb.Instance) *uikit.Widget {
	win := uikit.New(uikit.KindWindow, fmt.Sprintf("instance:%s:%d", in.Class, in.OID))
	win.SetProp("title", fmt.Sprintf("Instance %s %d", in.Class, in.OID))
	win.SetProp("window_type", "Instance")
	win.SetProp("visible", "true")
	attrs := uikit.New(uikit.KindPanel, "attributes")
	for i, a := range in.Attrs {
		attrs.Add(uikit.New(uikit.KindPanel, "attr:"+a.Name).
			SetProp("label", a.Name).
			Add(uikit.New(uikit.KindText, "attr_value:"+a.Name).
				SetProp("value", in.Values[i].String())))
	}
	win.Add(uikit.New(uikit.KindPanel, "control"), attrs)
	return win
}

func (u *UI) poleManagerInstanceWindow(in geodb.Instance) (*uikit.Widget, error) {
	win := uikit.New(uikit.KindWindow, fmt.Sprintf("instance:%s:%d", in.Class, in.OID))
	win.SetProp("title", fmt.Sprintf("Instance %s %d", in.Class, in.OID))
	win.SetProp("window_type", "Instance")
	win.SetProp("visible", "true")
	attrs := uikit.New(uikit.KindPanel, "attributes")
	for i, a := range in.Attrs {
		switch a.Name {
		case "pole_location":
			continue // hand-coded suppression
		case "pole_composition":
			v := in.Values[i]
			parts := make([]string, 0, 3)
			if !v.IsNull() {
				for _, c := range v.Tuple {
					parts = append(parts, c.String())
				}
			}
			attrs.Add(uikit.New(uikit.KindPanel, "attr:"+a.Name).
				SetProp("label", a.Name).
				Add(uikit.New(uikit.KindText, "composed").
					SetProp("composed", "true").
					SetProp("value", strings.Join(parts, " "))))
		case "pole_supplier":
			name, err := u.db.CallMethod(in.OID, "get_supplier_name")
			if err != nil {
				return nil, fmt.Errorf("hardwired: supplier lookup: %w", err)
			}
			attrs.Add(uikit.New(uikit.KindPanel, "attr:"+a.Name).
				SetProp("label", a.Name).
				Add(uikit.New(uikit.KindText, "supplier").
					SetProp("value", name.Text)))
		default:
			attrs.Add(uikit.New(uikit.KindPanel, "attr:"+a.Name).
				SetProp("label", a.Name).
				Add(uikit.New(uikit.KindText, "attr_value:"+a.Name).
					SetProp("value", in.Values[i].String())))
		}
	}
	win.Add(uikit.New(uikit.KindPanel, "control"), attrs)
	return win, nil
}

// CostModel quantifies what supporting one more context costs each
// approach. Artifact counts come from this package's own structure: a
// hardwired variant touches one window function per window kind plus every
// dispatch switch, and requires a rebuild; a directive is a single
// declarative artifact installed at run time.
type CostModel struct {
	// ArtifactsTouched is the number of source artifacts written or
	// modified (functions / directive files).
	ArtifactsTouched int
	// DispatchEdits is the number of existing switch sites modified.
	DispatchEdits int
	// RebuildRequired says whether shipping the change needs a recompile
	// and redeploy.
	RebuildRequired bool
	// SpecBytes is the size of the change's source text.
	SpecBytes int
}

// HardwiredCost models adding one variant to this package: three new window
// functions plus three dispatch-switch edits, rebuild required. specBytes
// should be the size of the new window code (the benchmark measures this
// package's own pole-manager functions).
func HardwiredCost(specBytes int) CostModel {
	return CostModel{
		ArtifactsTouched: 3,
		DispatchEdits:    3,
		RebuildRequired:  true,
		SpecBytes:        specBytes,
	}
}

// DirectiveCost models adding one context via the customization language:
// one directive, no dispatch edits, no rebuild.
func DirectiveCost(specBytes int) CostModel {
	return CostModel{
		ArtifactsTouched: 1,
		DispatchEdits:    0,
		RebuildRequired:  false,
		SpecBytes:        specBytes,
	}
}
