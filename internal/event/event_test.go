package event

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStringAndParse(t *testing.T) {
	kinds := []Kind{Connect, GetSchema, GetClass, GetValue,
		PreInsert, PostInsert, PreUpdate, PostUpdate, PreDelete, PostDelete, External}
	for _, k := range kinds {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if k, ok := ParseKind("get_instance"); !ok || k != GetValue {
		t.Fatal("Get_Instance is the paper's alias for Get_Value")
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Fatal("unknown kind parsed")
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Fatal("unknown kind should stringify to diagnostic")
	}
}

func TestContextSpecificityOrder(t *testing.T) {
	// The paper's priority example: generic < category < particular user.
	generic := Context{Application: "pole_manager"}
	category := Context{Category: "planners", Application: "pole_manager"}
	user := Context{User: "juliano", Application: "pole_manager"}
	userCat := Context{User: "juliano", Category: "planners", Application: "pole_manager"}
	if !(generic.Specificity() < category.Specificity()) {
		t.Fatal("category must outrank application-only")
	}
	if !(category.Specificity() < user.Specificity()) {
		t.Fatal("user must outrank category")
	}
	if !(user.Specificity() < userCat.Specificity()) {
		t.Fatal("user+category must outrank user alone")
	}
	withExtra := Context{Application: "pole_manager", Extra: map[string]string{"scale": "1:500"}}
	if !(generic.Specificity() < withExtra.Specificity()) {
		t.Fatal("extra dimensions add specificity")
	}
	// Extra dimensions never outrank a structural component.
	manyExtras := Context{Extra: map[string]string{"a": "1", "b": "2", "c": "3"}}
	if manyExtras.Specificity() >= category.Specificity() {
		t.Fatal("extras must not outrank category")
	}
}

func TestContextMatches(t *testing.T) {
	concrete := Context{User: "juliano", Category: "planners", Application: "pole_manager",
		Extra: map[string]string{"scale": "1:500"}}
	cases := []struct {
		pattern Context
		want    bool
	}{
		{Context{}, true},
		{Context{User: "juliano"}, true},
		{Context{User: "someone"}, false},
		{Context{Category: "planners"}, true},
		{Context{Category: "operators"}, false},
		{Context{Application: "pole_manager"}, true},
		{Context{User: "juliano", Application: "pole_manager"}, true},
		{Context{User: "juliano", Application: "duct_manager"}, false},
		{Context{Extra: map[string]string{"scale": "1:500"}}, true},
		{Context{Extra: map[string]string{"scale": "1:1000"}}, false},
		{Context{Extra: map[string]string{"epoch": "1997"}}, false},
	}
	for i, c := range cases {
		if got := c.pattern.Matches(concrete); got != c.want {
			t.Errorf("case %d: %s.Matches = %v, want %v", i, c.pattern, got, c.want)
		}
	}
}

func TestQuickEmptyPatternMatchesEverything(t *testing.T) {
	f := func(user, cat, app string) bool {
		return (Context{}).Matches(Context{User: user, Category: cat, Application: app})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSelfMatch(t *testing.T) {
	f := func(user, cat, app string) bool {
		c := Context{User: user, Category: cat, Application: app}
		return c.Matches(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContextString(t *testing.T) {
	c := Context{User: "juliano", Application: "pole_manager"}
	if got := c.String(); got != "<juliano, pole_manager>" {
		t.Fatalf("String = %q", got)
	}
	if got := (Context{}).String(); got != "<*>" {
		t.Fatalf("wildcard String = %q", got)
	}
	if got := (Context{Category: "planners"}).String(); got != "<category:planners>" {
		t.Fatalf("category String = %q", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: GetSchema, Schema: "phone_net", Ctx: Context{User: "juliano"}}
	s := e.String()
	for _, want := range []string{"Get_Schema", "schema=phone_net", "juliano"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	e2 := Event{Kind: GetValue, Schema: "s", Class: "C", Attr: "a", OID: 9, Name: "n"}
	s2 := e2.String()
	for _, want := range []string{"class=C", "attr=a", "oid=9", "name=n"} {
		if !strings.Contains(s2, want) {
			t.Errorf("event string %q missing %q", s2, want)
		}
	}
}

func TestBusDispatchOrderAndAbort(t *testing.T) {
	bus := NewBus()
	var order []int
	bus.Subscribe(HandlerFunc(func(e Event) error {
		order = append(order, 1)
		return nil
	}))
	sentinel := errors.New("veto")
	bus.Subscribe(HandlerFunc(func(e Event) error {
		order = append(order, 2)
		if e.Kind == PreUpdate {
			return sentinel
		}
		return nil
	}))
	bus.Subscribe(HandlerFunc(func(e Event) error {
		order = append(order, 3)
		return nil
	}))
	if err := bus.Emit(Event{Kind: GetSchema}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Fatalf("dispatch order = %v", order)
	}
	order = nil
	err := bus.Emit(Event{Kind: PreUpdate})
	if !errors.Is(err, sentinel) {
		t.Fatalf("veto not propagated: %v", err)
	}
	if len(order) != 2 {
		t.Fatalf("dispatch after veto = %v (handler 3 must not run)", order)
	}
}

func TestEmptyBus(t *testing.T) {
	if err := NewBus().Emit(Event{Kind: Connect}); err != nil {
		t.Fatal(err)
	}
}
