// Package event defines the database event vocabulary shared by the
// geographic DBMS (which emits events) and the active mechanism (which
// intercepts them), plus the synchronous bus connecting the two.
//
// The paper treats a user interaction Ii as two components: an interface
// event IEi (mouse click, key press — handled by callbacks in the uikit
// package) and a database event DBEi. In the exploratory mode DBEi is one of
// the primitives Get_Schema, Get_Class and Get_Value; update-capable modes
// add the Pre/Post mutation events that the topological-constraint rules of
// [11] hook. Every event carries the interaction context
// <user, category, application> against which customization rule conditions
// are evaluated.
package event

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/obs"
)

// Kind enumerates the database events the active mechanism can intercept.
type Kind uint8

// The event vocabulary.
const (
	// Connect fires when a user session attaches to a database.
	Connect Kind = iota + 1
	// GetSchema, GetClass and GetValue are the exploratory-mode retrieval
	// primitives of §3.3.
	GetSchema
	GetClass
	GetValue
	// Mutation events, emitted around updates so constraint rules can veto
	// (Pre*) or react (Post*).
	PreInsert
	PostInsert
	PreUpdate
	PostUpdate
	PreDelete
	PostDelete
	// External represents an application-defined event (the paper notes
	// events "may be internal to the database ... or external").
	External
)

// String returns the paper's spelling of the event name.
func (k Kind) String() string {
	switch k {
	case Connect:
		return "Connect"
	case GetSchema:
		return "Get_Schema"
	case GetClass:
		return "Get_Class"
	case GetValue:
		return "Get_Value"
	case PreInsert:
		return "Pre_Insert"
	case PostInsert:
		return "Post_Insert"
	case PreUpdate:
		return "Pre_Update"
	case PostUpdate:
		return "Post_Update"
	case PreDelete:
		return "Pre_Delete"
	case PostDelete:
		return "Post_Delete"
	case External:
		return "External"
	default:
		return fmt.Sprintf("event.Kind(%d)", uint8(k))
	}
}

// ParseKind resolves an event name (case-insensitive, underscore-tolerant)
// to its Kind.
func ParseKind(name string) (Kind, bool) {
	switch strings.ToLower(strings.ReplaceAll(name, "_", "")) {
	case "connect":
		return Connect, true
	case "getschema":
		return GetSchema, true
	case "getclass":
		return GetClass, true
	case "getvalue", "getinstance":
		return GetValue, true
	case "preinsert":
		return PreInsert, true
	case "postinsert":
		return PostInsert, true
	case "preupdate":
		return PreUpdate, true
	case "postupdate":
		return PostUpdate, true
	case "predelete":
		return PreDelete, true
	case "postdelete":
		return PostDelete, true
	case "external":
		return External, true
	default:
		return 0, false
	}
}

// Context describes the user working environment a rule condition checks.
// The paper restricts context to <user class, application domain> to avoid
// the exponential blow-up of full mental models, and notes it "can
// conceivably be extended to other contextual data (e.g., geographic scale,
// time framework)" — the Extra map carries those extensions.
type Context struct {
	// User is the individual user name (most specific).
	User string
	// Category is the user class/stereotype the application designer
	// partitioned users into.
	Category string
	// Application is the application domain.
	Application string
	// Extra holds extended context dimensions such as "scale" or "epoch".
	Extra map[string]string

	// Trace is the distributed-tracing context of the interaction that
	// produced this event. It rides the Context because the context already
	// flows from the UI through every primitive, event and rule dispatch —
	// but it is identity, not context: rule matching and specificity ignore
	// it, and it does not serialize here (the wire protocol carries it in
	// an explicit request field instead).
	Trace obs.SpanContext `json:"-"`
}

// Specificity scores how restrictive the context is; the active mechanism
// executes only the highest-priority (most specific) matching customization
// rule. User outranks category, which outranks application, which outranks
// each extra dimension; the weights make specificity a total order aligned
// with the paper's example (generic users < category of users < particular
// user within the category).
func (c Context) Specificity() int {
	s := 0
	if c.User != "" {
		s += 100
	}
	if c.Category != "" {
		s += 10
	}
	if c.Application != "" {
		s += 1
	}
	s += len(c.Extra)
	return s
}

// Matches reports whether the concrete context cc falls within pattern c.
// Empty pattern components are wildcards. Extra entries in the pattern must
// all be present and equal in the concrete context.
func (c Context) Matches(cc Context) bool {
	if c.User != "" && c.User != cc.User {
		return false
	}
	if c.Category != "" && c.Category != cc.Category {
		return false
	}
	if c.Application != "" && c.Application != cc.Application {
		return false
	}
	for k, v := range c.Extra {
		if cc.Extra[k] != v {
			return false
		}
	}
	return true
}

// String renders the context as the paper writes it: "<user, application>".
func (c Context) String() string {
	parts := []string{}
	if c.User != "" {
		parts = append(parts, c.User)
	}
	if c.Category != "" {
		parts = append(parts, "category:"+c.Category)
	}
	if c.Application != "" {
		parts = append(parts, c.Application)
	}
	for k, v := range c.Extra {
		parts = append(parts, k+"="+v)
	}
	if len(parts) == 0 {
		return "<*>"
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Event is a database event flowing through the bus.
type Event struct {
	Kind   Kind
	Schema string
	Class  string
	// Attr is set for attribute-scoped events (e.g. a Get_Value that a
	// presentation rule customizes per attribute).
	Attr string
	// OID identifies the instance for instance-scoped events.
	OID catalog.OID
	// Ctx is the interaction context the event occurred in.
	Ctx Context
	// Old and New carry instance values for mutation events (Old for
	// update/delete, New for insert/update), letting constraint rules
	// inspect the transition without re-reading the database.
	Old, New []catalog.Value
	// Name distinguishes External events.
	Name string
}

// String summarizes the event for traces (experiment F1 prints these).
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	if e.Schema != "" {
		fmt.Fprintf(&b, " schema=%s", e.Schema)
	}
	if e.Class != "" {
		fmt.Fprintf(&b, " class=%s", e.Class)
	}
	if e.Attr != "" {
		fmt.Fprintf(&b, " attr=%s", e.Attr)
	}
	if e.OID != 0 {
		fmt.Fprintf(&b, " oid=%d", e.OID)
	}
	if e.Name != "" {
		fmt.Fprintf(&b, " name=%s", e.Name)
	}
	fmt.Fprintf(&b, " ctx=%s", e.Ctx)
	return b.String()
}

// Dim resolves a condition-expression dimension name against the event:
// the builtins user, category and application (from the context), schema,
// class, attr and name (from the event scope), oid (decimal, absent while
// zero), and any extended-context dimension from Ctx.Extra. An empty value
// is reported as absent — the same convention the context pattern matcher
// uses for wildcards. This is the binding rule conditions (active.Rule.Cond)
// are evaluated under.
func (e Event) Dim(name string) (string, bool) {
	var v string
	switch name {
	case "user":
		v = e.Ctx.User
	case "category":
		v = e.Ctx.Category
	case "application":
		v = e.Ctx.Application
	case "schema":
		v = e.Schema
	case "class":
		v = e.Class
	case "attr":
		v = e.Attr
	case "name":
		v = e.Name
	case "oid":
		if e.OID == 0 {
			return "", false
		}
		return strconv.FormatUint(uint64(e.OID), 10), true
	default:
		v = e.Ctx.Extra[name]
	}
	return v, v != ""
}

// Pattern describes a set of events: a kind plus optional scope pins
// (empty components are wildcards). Reaction rules declare the events
// their actions may emit as patterns (active.Rule.Emits); the engine
// enforces the declaration at emission time and the static analyzer
// (internal/ruleanalysis) builds the rule-triggering graph from it.
type Pattern struct {
	Kind   Kind   `json:"kind"`
	Schema string `json:"schema,omitempty"`
	Class  string `json:"class,omitempty"`
	Attr   string `json:"attr,omitempty"`
	// Name pins External events to a particular name.
	Name string `json:"name,omitempty"`
}

// Matches reports whether the concrete event falls within the pattern.
func (p Pattern) Matches(e Event) bool {
	if p.Kind != e.Kind {
		return false
	}
	if p.Schema != "" && p.Schema != e.Schema {
		return false
	}
	if p.Class != "" && p.Class != e.Class {
		return false
	}
	if p.Attr != "" && p.Attr != e.Attr {
		return false
	}
	if p.Name != "" && p.Name != e.Name {
		return false
	}
	return true
}

// String renders the pattern for diagnostics.
func (p Pattern) String() string {
	var b strings.Builder
	b.WriteString(p.Kind.String())
	if p.Schema != "" {
		fmt.Fprintf(&b, " schema=%s", p.Schema)
	}
	if p.Class != "" {
		fmt.Fprintf(&b, " class=%s", p.Class)
	}
	if p.Attr != "" {
		fmt.Fprintf(&b, " attr=%s", p.Attr)
	}
	if p.Name != "" {
		fmt.Fprintf(&b, " name=%s", p.Name)
	}
	return b.String()
}

// Handler processes an event. Returning an error from a Pre* event vetoes
// the mutation; errors from other events propagate to the emitter.
type Handler interface {
	HandleEvent(Event) error
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(Event) error

// HandleEvent implements Handler.
func (f HandlerFunc) HandleEvent(e Event) error { return f(e) }

// Bus is a synchronous publish/subscribe dispatcher. Handlers run in
// subscription order on the emitting goroutine; the first error aborts
// dispatch and is returned to the emitter. Synchronous dispatch is what
// gives the active mechanism its immediate (within-interaction) coupling:
// the customization rule must run before the interface builder assembles
// the window.
type Bus struct {
	handlers []Handler
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers a handler for all events. The active engine does its
// own kind/context filtering; keeping the bus unfiltered matches the paper's
// single interception point.
func (b *Bus) Subscribe(h Handler) {
	b.handlers = append(b.handlers, h)
}

// Per-kind dispatch counters, resolved once at init so Emit pays a single
// atomic add. Indexed by Kind (Connect..External); index 0 catches
// out-of-vocabulary kinds.
var emitTotal = func() [External + 1]*obs.Counter {
	var cs [External + 1]*obs.Counter
	cs[0] = obs.Default().Counter(`gis_event_emitted_total{kind="unknown"}`)
	for k := Connect; k <= External; k++ {
		cs[k] = obs.Default().Counter(fmt.Sprintf("gis_event_emitted_total{kind=%q}", k.String()))
	}
	return cs
}()

// Emit dispatches the event to every handler in order.
func (b *Bus) Emit(e Event) error {
	if int(e.Kind) < len(emitTotal) {
		emitTotal[e.Kind].Inc()
	} else {
		emitTotal[0].Inc()
	}
	for _, h := range b.handlers {
		if err := h.HandleEvent(e); err != nil {
			return err
		}
	}
	return nil
}
