// Package topo maintains binary topological constraints through the active
// database mechanism, reproducing the companion prototype the paper reports
// in §5 ("a prototype has been developed to associate a gis with an active
// dbms, and it has been used for maintaining topological constraints in the
// gis", citing Medeiros & Cilia [11]).
//
// A constraint relates two classes through an Egenhofer relation and is
// compiled into constraint-family rules on the Pre_Insert and Pre_Update
// events of the constrained class: a violating mutation is vetoed before it
// reaches storage. The package also provides a certification scan (after
// Laurini & Milleret-Raffort's database certification) that audits existing
// data against a constraint set.
package topo

import (
	"errors"
	"fmt"

	"repro/internal/active"
	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/geodb"
	"repro/internal/geom"
)

// Errors returned by the constraint subsystem.
var (
	ErrViolation     = errors.New("topo: topological constraint violated")
	ErrBadConstraint = errors.New("topo: invalid constraint")
)

// Mode says whether the relation must hold or must not hold.
type Mode uint8

// Constraint modes.
const (
	// Forbid vetoes a mutation when ANY instance of the related class
	// stands in the relation with the new geometry (e.g. no two poles may
	// be equal; no building may overlap a street).
	Forbid Mode = iota + 1
	// Require vetoes a mutation when NO instance of the related class
	// stands in the relation (e.g. every duct must be inside some zone).
	Require
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Forbid:
		return "forbid"
	case Require:
		return "require"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Constraint is a binary topological constraint: instances of Class (the
// guarded class) against instances of With (the related class, possibly the
// same) in the given schema.
type Constraint struct {
	// Name identifies the constraint in rules and violation messages.
	Name string
	// Schema and Class scope the guarded mutations.
	Schema string
	Class  string
	// With is the related class whose extension is tested.
	With string
	// Relation is the Egenhofer relation tested between the mutated
	// geometry and each related instance.
	Relation geom.Relation
	// Mode selects forbid/require semantics.
	Mode Mode
}

// Validate checks the constraint against the catalog: both classes must
// exist and carry geometry attributes.
func (c Constraint) Validate(cat *catalog.Catalog) error {
	if c.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadConstraint)
	}
	if c.Mode != Forbid && c.Mode != Require {
		return fmt.Errorf("%w: %q has no mode", ErrBadConstraint, c.Name)
	}
	if c.Relation == 0 {
		return fmt.Errorf("%w: %q has no relation", ErrBadConstraint, c.Name)
	}
	s, err := cat.Schema(c.Schema)
	if err != nil {
		return fmt.Errorf("%w: %q: %v", ErrBadConstraint, c.Name, err)
	}
	for _, class := range []string{c.Class, c.With} {
		cl, err := s.Class(class)
		if err != nil {
			return fmt.Errorf("%w: %q: %v", ErrBadConstraint, c.Name, err)
		}
		if _, ok := cl.GeometryAttr(); !ok {
			return fmt.Errorf("%w: %q: class %s has no geometry attribute",
				ErrBadConstraint, c.Name, class)
		}
	}
	return nil
}

// Guard installs constraints as rules on an engine bound to a database. It
// owns the relation-evaluation machinery shared by the rules and the
// certification scan.
type Guard struct {
	db *geodb.DB
	// Checks counts constraint evaluations; Vetoes counts violations
	// blocked (B7 reporting).
	Checks, Vetoes uint64
}

// NewGuard returns a guard over the database.
func NewGuard(db *geodb.DB) *Guard { return &Guard{db: db} }

// Install validates the constraint and adds its rules (one per guarded
// event) to the engine.
func (g *Guard) Install(engine *active.Engine, c Constraint) error {
	if err := c.Validate(g.db.Catalog()); err != nil {
		return err
	}
	for _, kind := range []event.Kind{event.PreInsert, event.PreUpdate} {
		kind := kind
		rule := active.Rule{
			Name:   fmt.Sprintf("topo:%s:%s", c.Name, kind),
			Family: active.FamilyConstraint,
			On:     kind,
			Schema: c.Schema,
			Class:  c.Class,
			React: func(e event.Event, _ active.Emitter) error {
				return g.check(c, e)
			},
		}
		if err := engine.AddRule(rule); err != nil {
			return err
		}
	}
	return nil
}

// check evaluates the constraint for a mutation event.
func (g *Guard) check(c Constraint, e event.Event) error {
	g.Checks++
	newGeom, ok := eventGeometry(e)
	if !ok {
		return nil // no geometry in the mutation: nothing to constrain
	}
	offenders, err := g.related(c, newGeom, e.OID)
	if err != nil {
		return err
	}
	switch c.Mode {
	case Forbid:
		if len(offenders) > 0 {
			g.Vetoes++
			return fmt.Errorf("%w: %s — %s %v %s (instance %v)",
				ErrViolation, c.Name, c.Class, c.Relation, c.With, offenders[0])
		}
	case Require:
		if len(offenders) == 0 {
			g.Vetoes++
			return fmt.Errorf("%w: %s — %s must be %v some %s",
				ErrViolation, c.Name, c.Class, c.Relation, c.With)
		}
	}
	return nil
}

// related returns OIDs of instances of c.With standing in c.Relation with
// the geometry, excluding self.
func (g *Guard) related(c Constraint, gm geom.Geometry, self catalog.OID) ([]catalog.OID, error) {
	var candidates []catalog.OID
	var err error
	if c.Relation == geom.Disjoint {
		// Disjointness cannot be window-pruned.
		instances, serr := g.db.Select(c.Schema, c.With, nil)
		if serr != nil {
			return nil, serr
		}
		for _, in := range instances {
			candidates = append(candidates, in.OID)
		}
	} else {
		candidates, err = g.db.Window(c.Schema, c.With, gm.Bounds())
		if err != nil {
			return nil, err
		}
	}
	var out []catalog.OID
	for _, oid := range candidates {
		if oid == self {
			continue
		}
		in, err := g.db.GetValue(event.Context{Application: "_topo"}, oid)
		if err != nil {
			return nil, err
		}
		other, ok := in.Geometry()
		if !ok {
			continue
		}
		if RelateGeometries(gm, other) == c.Relation {
			out = append(out, oid)
		}
	}
	return out, nil
}

// eventGeometry extracts the first geometry from the mutation's new values
// (update/insert); delete guards are not installed since removing an object
// cannot violate a binary relation that Forbid/Require express here.
func eventGeometry(e event.Event) (geom.Geometry, bool) {
	for _, v := range e.New {
		if v.Kind == catalog.KindGeometry && v.Geom != nil {
			return v.Geom, true
		}
	}
	return nil, false
}

// RelateGeometries classifies the topological relation between two
// geometries of any supported kinds. Region-region pairs use the exact
// Egenhofer classification; point and line operands use the natural
// restriction of the relation vocabulary (documented per case).
func RelateGeometries(a, b geom.Geometry) geom.Relation {
	if a == nil || b == nil || a.Empty() || b.Empty() {
		return geom.Disjoint
	}
	pa, aIsRegion := asPolygon(a)
	pb, bIsRegion := asPolygon(b)
	switch {
	case aIsRegion && bIsRegion:
		return geom.Relate(pa, pb)
	case aIsRegion != bIsRegion:
		// Point or line vs region.
		region, other := pa, b
		flip := false
		if bIsRegion {
			region, other = pb, a
			flip = true
		}
		rel := nonRegionVsRegion(other, region)
		if flip {
			return rel
		}
		return rel.Converse()
	default:
		// Neither is a region: points and lines.
		switch ga := a.(type) {
		case geom.Point:
			if gb, ok := b.(geom.Point); ok {
				if ga.Equal(gb) {
					return geom.EqualRel
				}
				return geom.Disjoint
			}
			if geom.Intersects(a, b) {
				return geom.Meet // a point touching a line
			}
			return geom.Disjoint
		default:
			if gb, ok := b.(geom.Point); ok {
				if geom.Intersects(a, gb) {
					return geom.Meet
				}
				return geom.Disjoint
			}
			// Line vs line: crossing or touching collapses to Overlap,
			// the only interior-sharing relation lines support here.
			if geom.Intersects(a, b) {
				return geom.Overlap
			}
			return geom.Disjoint
		}
	}
}

func asPolygon(g geom.Geometry) (geom.Polygon, bool) {
	switch gg := g.(type) {
	case geom.Polygon:
		return gg, true
	case geom.Rect:
		return gg.AsPolygon(), true
	default:
		return geom.Polygon{}, false
	}
}

// nonRegionVsRegion classifies a point or line against a region.
func nonRegionVsRegion(g geom.Geometry, region geom.Polygon) geom.Relation {
	switch gg := g.(type) {
	case geom.Point:
		switch geom.PointInPolygon(gg, region) {
		case 1:
			return geom.Inside
		case 0:
			return geom.Meet
		default:
			return geom.Disjoint
		}
	default:
		if geom.Contains(region, g) {
			return geom.Inside
		}
		if geom.Intersects(g, region) {
			return geom.Overlap
		}
		return geom.Disjoint
	}
}

// Violation is one certification finding.
type Violation struct {
	Constraint string
	OID        catalog.OID
	Detail     string
}

// Certify audits the existing extension of the constraint's guarded class,
// returning every violation — the "topological reorganization of
// inconsistent geographical databases: a step towards their certification"
// use case of [8].
func (g *Guard) Certify(c Constraint) ([]Violation, error) {
	if err := c.Validate(g.db.Catalog()); err != nil {
		return nil, err
	}
	instances, err := g.db.Select(c.Schema, c.Class, nil)
	if err != nil {
		return nil, err
	}
	var out []Violation
	for _, in := range instances {
		gm, ok := in.Geometry()
		if !ok {
			continue
		}
		g.Checks++
		offenders, err := g.related(c, gm, in.OID)
		if err != nil {
			return nil, err
		}
		switch c.Mode {
		case Forbid:
			if len(offenders) > 0 {
				out = append(out, Violation{
					Constraint: c.Name,
					OID:        in.OID,
					Detail:     fmt.Sprintf("%v %s with %v", c.Relation, c.With, offenders),
				})
			}
		case Require:
			if len(offenders) == 0 {
				out = append(out, Violation{
					Constraint: c.Name,
					OID:        in.OID,
					Detail:     fmt.Sprintf("not %v any %s", c.Relation, c.With),
				})
			}
		}
	}
	return out, nil
}
