package topo

import (
	"errors"
	"testing"

	"repro/internal/active"
	"repro/internal/catalog"
	"repro/internal/event"
	"repro/internal/geodb"
	"repro/internal/geom"
)

// mustOpen replaces the removed geodb.MustOpen for tests: Open or fail the
// test. The library's open/recovery path returns errors instead of
// panicking, so a corrupt page file degrades gracefully in servers.
func mustOpen(t testing.TB, opts geodb.Options) *geodb.DB {
	t.Helper()
	db, err := geodb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var ctx = event.Context{User: "op", Application: "maintenance"}

// cityWorld builds a schema with zones (regions), ducts (lines) and poles
// (points) — the [11] constraint scenario.
func cityWorld(t testing.TB) (*geodb.DB, *active.Engine, *Guard) {
	t.Helper()
	db := mustOpen(t, geodb.Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.DefineSchema("city"))
	must(db.DefineClass("city", catalog.Class{
		Name: "Zone",
		Attrs: []catalog.Field{
			catalog.F("name", catalog.Scalar(catalog.KindText)),
			catalog.F("region", catalog.Scalar(catalog.KindGeometry)),
		},
	}))
	must(db.DefineClass("city", catalog.Class{
		Name: "Pole",
		Attrs: []catalog.Field{
			catalog.F("location", catalog.Scalar(catalog.KindGeometry)),
		},
	}))
	must(db.DefineClass("city", catalog.Class{
		Name: "Duct",
		Attrs: []catalog.Field{
			catalog.F("path", catalog.Scalar(catalog.KindGeometry)),
		},
	}))
	must(db.DefineClass("city", catalog.Class{
		Name:  "Office",
		Attrs: []catalog.Field{catalog.F("label", catalog.Scalar(catalog.KindText))},
	}))
	engine := active.NewEngine()
	db.Bus().Subscribe(engine)
	return db, engine, NewGuard(db)
}

func insertZone(t testing.TB, db *geodb.DB, name string, r geom.Rect) catalog.OID {
	t.Helper()
	oid, err := db.InsertMap(ctx, "city", "Zone", map[string]catalog.Value{
		"name":   catalog.TextVal(name),
		"region": catalog.GeomVal(r.AsPolygon()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestValidate(t *testing.T) {
	db, _, _ := cityWorld(t)
	cat := db.Catalog()
	good := Constraint{Name: "c", Schema: "city", Class: "Pole", With: "Zone",
		Relation: geom.Inside, Mode: Require}
	if err := good.Validate(cat); err != nil {
		t.Fatal(err)
	}
	bad := []Constraint{
		{},
		{Name: "x", Schema: "city", Class: "Pole", With: "Zone", Relation: geom.Inside},
		{Name: "x", Schema: "city", Class: "Pole", With: "Zone", Mode: Forbid},
		{Name: "x", Schema: "ghost", Class: "Pole", With: "Zone", Relation: geom.Inside, Mode: Require},
		{Name: "x", Schema: "city", Class: "Ghost", With: "Zone", Relation: geom.Inside, Mode: Require},
		{Name: "x", Schema: "city", Class: "Pole", With: "Office", Relation: geom.Inside, Mode: Require},
	}
	for i, c := range bad {
		if err := c.Validate(cat); !errors.Is(err, ErrBadConstraint) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestRequireInsideZone(t *testing.T) {
	db, engine, guard := cityWorld(t)
	insertZone(t, db, "center", geom.R(0, 0, 100, 100))
	if err := guard.Install(engine, Constraint{
		Name: "pole-in-zone", Schema: "city", Class: "Pole", With: "Zone",
		Relation: geom.Inside, Mode: Require,
	}); err != nil {
		t.Fatal(err)
	}
	// Inside the zone: accepted.
	oid, err := db.InsertMap(ctx, "city", "Pole", map[string]catalog.Value{
		"location": catalog.GeomVal(geom.Pt(50, 50)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Outside every zone: vetoed.
	_, err = db.InsertMap(ctx, "city", "Pole", map[string]catalog.Value{
		"location": catalog.GeomVal(geom.Pt(500, 500)),
	})
	if !errors.Is(err, geodb.ErrVetoed) {
		t.Fatalf("outside insert: %v", err)
	}
	if db.Count("city", "Pole") != 1 {
		t.Fatal("vetoed insert persisted")
	}
	// Updates are guarded too: moving the pole out of the zone is vetoed.
	err = db.UpdateAttr(ctx, oid, "location", catalog.GeomVal(geom.Pt(900, 900)))
	if !errors.Is(err, geodb.ErrVetoed) {
		t.Fatalf("escaping update: %v", err)
	}
	// Moving within the zone is fine.
	if err := db.UpdateAttr(ctx, oid, "location", catalog.GeomVal(geom.Pt(60, 60))); err != nil {
		t.Fatal(err)
	}
	if guard.Vetoes != 2 {
		t.Fatalf("vetoes = %d", guard.Vetoes)
	}
}

func TestForbidEqualPoles(t *testing.T) {
	db, engine, guard := cityWorld(t)
	if err := guard.Install(engine, Constraint{
		Name: "poles-distinct", Schema: "city", Class: "Pole", With: "Pole",
		Relation: geom.EqualRel, Mode: Forbid,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertMap(ctx, "city", "Pole", map[string]catalog.Value{
		"location": catalog.GeomVal(geom.Pt(10, 10))}); err != nil {
		t.Fatal(err)
	}
	// Same location: vetoed (self-exclusion does not apply to a new OID).
	_, err := db.InsertMap(ctx, "city", "Pole", map[string]catalog.Value{
		"location": catalog.GeomVal(geom.Pt(10, 10))})
	if !errors.Is(err, geodb.ErrVetoed) {
		t.Fatalf("duplicate location: %v", err)
	}
	// Different location: fine.
	if _, err := db.InsertMap(ctx, "city", "Pole", map[string]catalog.Value{
		"location": catalog.GeomVal(geom.Pt(11, 10))}); err != nil {
		t.Fatal(err)
	}
}

func TestForbidZoneOverlap(t *testing.T) {
	db, engine, guard := cityWorld(t)
	if err := guard.Install(engine, Constraint{
		Name: "zones-disjoint", Schema: "city", Class: "Zone", With: "Zone",
		Relation: geom.Overlap, Mode: Forbid,
	}); err != nil {
		t.Fatal(err)
	}
	insertZone(t, db, "a", geom.R(0, 0, 10, 10))
	// Meeting at an edge is not overlap: allowed.
	insertZone(t, db, "b", geom.R(10, 0, 20, 10))
	// Overlapping: vetoed.
	_, err := db.InsertMap(ctx, "city", "Zone", map[string]catalog.Value{
		"name":   catalog.TextVal("c"),
		"region": catalog.GeomVal(geom.R(5, 5, 15, 15).AsPolygon()),
	})
	if !errors.Is(err, geodb.ErrVetoed) {
		t.Fatalf("overlapping zone: %v", err)
	}
	if db.Count("city", "Zone") != 2 {
		t.Fatalf("zones = %d", db.Count("city", "Zone"))
	}
}

func TestUpdateSelfExclusion(t *testing.T) {
	db, engine, guard := cityWorld(t)
	if err := guard.Install(engine, Constraint{
		Name: "zones-disjoint", Schema: "city", Class: "Zone", With: "Zone",
		Relation: geom.Overlap, Mode: Forbid,
	}); err != nil {
		t.Fatal(err)
	}
	z := insertZone(t, db, "a", geom.R(0, 0, 10, 10))
	// Growing the zone in place must not collide with itself.
	err := db.UpdateAttr(ctx, z, "region", catalog.GeomVal(geom.R(0, 0, 12, 12).AsPolygon()))
	if err != nil {
		t.Fatalf("self-collision on update: %v", err)
	}
}

func TestLineConstraints(t *testing.T) {
	db, engine, guard := cityWorld(t)
	insertZone(t, db, "center", geom.R(0, 0, 100, 100))
	if err := guard.Install(engine, Constraint{
		Name: "duct-in-zone", Schema: "city", Class: "Duct", With: "Zone",
		Relation: geom.Inside, Mode: Require,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertMap(ctx, "city", "Duct", map[string]catalog.Value{
		"path": catalog.GeomVal(geom.LineString{geom.Pt(10, 10), geom.Pt(90, 90)}),
	}); err != nil {
		t.Fatal(err)
	}
	_, err := db.InsertMap(ctx, "city", "Duct", map[string]catalog.Value{
		"path": catalog.GeomVal(geom.LineString{geom.Pt(10, 10), geom.Pt(900, 90)}),
	})
	if !errors.Is(err, geodb.ErrVetoed) {
		t.Fatalf("escaping duct: %v", err)
	}
}

func TestRelateGeometries(t *testing.T) {
	zone := geom.R(0, 0, 10, 10).AsPolygon()
	cases := []struct {
		a, b geom.Geometry
		want geom.Relation
	}{
		{geom.Pt(5, 5), zone, geom.Inside},
		{geom.Pt(0, 5), zone, geom.Meet},
		{geom.Pt(50, 50), zone, geom.Disjoint},
		{zone, geom.Pt(5, 5), geom.ContainsRel},
		{geom.Pt(1, 1), geom.Pt(1, 1), geom.EqualRel},
		{geom.Pt(1, 1), geom.Pt(2, 2), geom.Disjoint},
		{geom.LineString{geom.Pt(1, 1), geom.Pt(9, 9)}, zone, geom.Inside},
		{geom.LineString{geom.Pt(5, 5), geom.Pt(50, 5)}, zone, geom.Overlap},
		{geom.LineString{geom.Pt(20, 20), geom.Pt(30, 30)}, zone, geom.Disjoint},
		{geom.LineString{geom.Pt(0, 0), geom.Pt(5, 5)},
			geom.LineString{geom.Pt(0, 5), geom.Pt(5, 0)}, geom.Overlap},
		{geom.LineString{geom.Pt(0, 0), geom.Pt(1, 1)},
			geom.LineString{geom.Pt(5, 5), geom.Pt(6, 6)}, geom.Disjoint},
		{geom.Pt(3, 3), geom.LineString{geom.Pt(0, 0), geom.Pt(6, 6)}, geom.Meet},
		{geom.R(0, 0, 4, 4), geom.R(2, 2, 6, 6), geom.Overlap},
		{nil, zone, geom.Disjoint},
	}
	for i, c := range cases {
		if got := RelateGeometries(c.a, c.b); got != c.want {
			t.Errorf("case %d: RelateGeometries = %v, want %v", i, got, c.want)
		}
	}
}

func TestCertify(t *testing.T) {
	db, engine, guard := cityWorld(t)
	// Insert violating data BEFORE installing the constraint: pole outside
	// any zone.
	insertZone(t, db, "center", geom.R(0, 0, 10, 10))
	inZone, _ := db.InsertMap(ctx, "city", "Pole", map[string]catalog.Value{
		"location": catalog.GeomVal(geom.Pt(5, 5))})
	outZone, _ := db.InsertMap(ctx, "city", "Pole", map[string]catalog.Value{
		"location": catalog.GeomVal(geom.Pt(500, 500))})
	c := Constraint{Name: "pole-in-zone", Schema: "city", Class: "Pole", With: "Zone",
		Relation: geom.Inside, Mode: Require}
	violations, err := guard.Certify(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || violations[0].OID != outZone {
		t.Fatalf("violations = %+v (in=%d out=%d)", violations, inZone, outZone)
	}
	// After installing the rule, fixing the violation succeeds and the
	// certification comes back clean.
	if err := guard.Install(engine, c); err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateAttr(ctx, outZone, "location", catalog.GeomVal(geom.Pt(2, 2))); err != nil {
		t.Fatal(err)
	}
	violations, _ = guard.Certify(c)
	if len(violations) != 0 {
		t.Fatalf("post-fix violations = %+v", violations)
	}
}

func TestInstallValidatesFirst(t *testing.T) {
	_, engine, guard := cityWorld(t)
	err := guard.Install(engine, Constraint{Name: "bad", Schema: "ghost",
		Class: "Pole", With: "Zone", Relation: geom.Inside, Mode: Require})
	if !errors.Is(err, ErrBadConstraint) {
		t.Fatalf("bad constraint installed: %v", err)
	}
	if engine.RuleCount() != 0 {
		t.Fatal("rules leaked from failed install")
	}
}

func TestNonGeometryMutationsPass(t *testing.T) {
	db, engine, guard := cityWorld(t)
	if err := guard.Install(engine, Constraint{
		Name: "office-free", Schema: "city", Class: "Office", With: "Zone",
		Relation: geom.Inside, Mode: Require,
	}); err == nil {
		t.Fatal("constraint on geometry-less class must fail validation")
	}
	// A constraint on Pole does not affect Office mutations.
	if err := guard.Install(engine, Constraint{
		Name: "pole-in-zone", Schema: "city", Class: "Pole", With: "Zone",
		Relation: geom.Inside, Mode: Require,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertMap(ctx, "city", "Office", map[string]catalog.Value{
		"label": catalog.TextVal("HQ")}); err != nil {
		t.Fatal(err)
	}
}
