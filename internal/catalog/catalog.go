// Package catalog defines the object-oriented data model of the geographic
// DBMS: schemas, classes, attribute types and methods. It is the metadata
// layer that the paper's exploratory interaction mode browses (Get_Schema /
// Get_Class navigate exactly this structure) and that the customization
// language's semantic analysis validates directives against.
//
// The model reproduces what Figure 5 of the paper needs: integer, float and
// text attributes, nested tuple attributes, references to other classes
// (pole_supplier: Supplier), geometry attributes (pole_location: Geometry),
// bitmap attributes (pole_picture: bitmap), and named methods
// (get_supplier_name(Supplier)). Classes support single inheritance.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by catalog operations.
var (
	ErrDuplicate    = errors.New("catalog: duplicate definition")
	ErrUnknown      = errors.New("catalog: unknown name")
	ErrInvalidClass = errors.New("catalog: invalid class definition")
)

// Kind enumerates attribute type constructors.
type Kind uint8

// Attribute kinds.
const (
	KindInteger Kind = iota + 1
	KindFloat
	KindText
	KindBool
	KindTuple
	KindReference
	KindGeometry
	KindBitmap
)

// String returns the name the customization language and schema dumps use.
func (k Kind) String() string {
	switch k {
	case KindInteger:
		return "integer"
	case KindFloat:
		return "float"
	case KindText:
		return "text"
	case KindBool:
		return "bool"
	case KindTuple:
		return "tuple"
	case KindReference:
		return "reference"
	case KindGeometry:
		return "Geometry"
	case KindBitmap:
		return "bitmap"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind resolves a scalar kind name as written in schema scripts. Tuple
// and reference types are structural and built with TupleOf / RefTo instead.
func ParseKind(name string) (Kind, bool) {
	switch strings.ToLower(name) {
	case "integer", "int":
		return KindInteger, true
	case "float", "real":
		return KindFloat, true
	case "text", "string":
		return KindText, true
	case "bool", "boolean":
		return KindBool, true
	case "geometry":
		return KindGeometry, true
	case "bitmap":
		return KindBitmap, true
	default:
		return 0, false
	}
}

// AttrType describes the type of an attribute. Scalar kinds use only Kind;
// tuples carry their fields; references carry the target class name.
type AttrType struct {
	Kind     Kind
	Fields   []Field // KindTuple: ordered named components
	RefClass string  // KindReference: target class
}

// Scalar constructs a scalar attribute type.
func Scalar(k Kind) AttrType { return AttrType{Kind: k} }

// TupleOf constructs a tuple attribute type from ordered fields.
func TupleOf(fields ...Field) AttrType { return AttrType{Kind: KindTuple, Fields: fields} }

// RefTo constructs a reference attribute type to the named class.
func RefTo(class string) AttrType { return AttrType{Kind: KindReference, RefClass: class} }

// String renders the type as it appears in schema listings, e.g.
// "tuple(pole_material: text; pole_diameter: float)".
func (t AttrType) String() string {
	switch t.Kind {
	case KindTuple:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = fmt.Sprintf("%s: %s", f.Name, f.Type)
		}
		return "tuple(" + strings.Join(parts, "; ") + ")"
	case KindReference:
		return t.RefClass
	default:
		return t.Kind.String()
	}
}

// Equal reports structural type equality.
func (t AttrType) Equal(u AttrType) bool {
	if t.Kind != u.Kind || t.RefClass != u.RefClass || len(t.Fields) != len(u.Fields) {
		return false
	}
	for i := range t.Fields {
		if t.Fields[i].Name != u.Fields[i].Name || !t.Fields[i].Type.Equal(u.Fields[i].Type) {
			return false
		}
	}
	return true
}

// Field is a named, typed component: a class attribute or a tuple member.
type Field struct {
	Name string
	Type AttrType
}

// F is shorthand for Field construction.
func F(name string, t AttrType) Field { return Field{Name: name, Type: t} }

// Method is a named operation on a class. Implementations are registered at
// run time with the database (the catalog stores only signatures), mirroring
// how the paper treats callback and method code as outside the declarative
// model.
type Method struct {
	Name   string
	Params []string // parameter type or class names, informational
}

// Class describes an object class. Parent, when non-empty, names the
// superclass within the same schema; effective attributes are the parent's
// followed by the class's own.
type Class struct {
	Name    string
	Parent  string
	Attrs   []Field
	Methods []Method
}

// AttrNames returns the class's own attribute names in declaration order.
func (c *Class) AttrNames() []string {
	names := make([]string, len(c.Attrs))
	for i, a := range c.Attrs {
		names[i] = a.Name
	}
	return names
}

// Attr returns the class's own attribute by name.
func (c *Class) Attr(name string) (Field, bool) {
	for _, a := range c.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Field{}, false
}

// Method returns the class's own method by name.
func (c *Class) Method(name string) (Method, bool) {
	for _, m := range c.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return Method{}, false
}

// GeometryAttr returns the name of the first geometry-typed attribute, used
// by the interface builder to pick what a Class set window's drawing area
// displays. ok is false when the class has no spatial attribute.
func (c *Class) GeometryAttr() (string, bool) {
	for _, a := range c.Attrs {
		if a.Type.Kind == KindGeometry {
			return a.Name, true
		}
	}
	return "", false
}

// Schema is a named collection of classes.
type Schema struct {
	Name    string
	classes map[string]*Class
	order   []string // declaration order, for deterministic listings
}

// NewSchema returns an empty schema.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, classes: make(map[string]*Class)}
}

// Classes returns class names in declaration order.
func (s *Schema) Classes() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Class returns the named class.
func (s *Schema) Class(name string) (*Class, error) {
	c, ok := s.classes[name]
	if !ok {
		return nil, fmt.Errorf("%w: class %q in schema %q", ErrUnknown, name, s.Name)
	}
	return c, nil
}

// HasClass reports whether the schema defines the class.
func (s *Schema) HasClass(name string) bool {
	_, ok := s.classes[name]
	return ok
}

// EffectiveAttrs returns the class's inherited and own attributes, parents
// first. It follows the Parent chain inside this schema.
func (s *Schema) EffectiveAttrs(className string) ([]Field, error) {
	var chain []*Class
	seen := map[string]bool{}
	for name := className; name != ""; {
		if seen[name] {
			return nil, fmt.Errorf("%w: inheritance cycle at %q", ErrInvalidClass, name)
		}
		seen[name] = true
		c, err := s.Class(name)
		if err != nil {
			return nil, err
		}
		chain = append(chain, c)
		name = c.Parent
	}
	var out []Field
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].Attrs...)
	}
	return out, nil
}

// EffectiveMethods returns inherited and own methods, parents first, with
// overrides (same name) collapsing to the most-derived definition.
func (s *Schema) EffectiveMethods(className string) ([]Method, error) {
	indexByName := map[string]int{}
	var out []Method
	var chain []*Class
	seen := map[string]bool{}
	for name := className; name != ""; {
		if seen[name] {
			return nil, fmt.Errorf("%w: inheritance cycle at %q", ErrInvalidClass, name)
		}
		seen[name] = true
		c, err := s.Class(name)
		if err != nil {
			return nil, err
		}
		chain = append(chain, c)
		name = c.Parent
	}
	for i := len(chain) - 1; i >= 0; i-- {
		for _, m := range chain[i].Methods {
			if idx, ok := indexByName[m.Name]; ok {
				out[idx] = m // override
				continue
			}
			indexByName[m.Name] = len(out)
			out = append(out, m)
		}
	}
	return out, nil
}

// IsSubclassOf reports whether class sub inherits (transitively) from super,
// or is super itself.
func (s *Schema) IsSubclassOf(sub, super string) bool {
	seen := map[string]bool{}
	for name := sub; name != ""; {
		if name == super {
			return true
		}
		if seen[name] {
			return false
		}
		seen[name] = true
		c, ok := s.classes[name]
		if !ok {
			return false
		}
		name = c.Parent
	}
	return false
}

// Catalog holds every schema of a database. It is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	schemas map[string]*Schema
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{schemas: make(map[string]*Schema)}
}

// DefineSchema creates a new empty schema.
func (c *Catalog) DefineSchema(name string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty schema name", ErrInvalidClass)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.schemas[name]; ok {
		return nil, fmt.Errorf("%w: schema %q", ErrDuplicate, name)
	}
	s := NewSchema(name)
	c.schemas[name] = s
	return s, nil
}

// Schema returns the named schema.
func (c *Catalog) Schema(name string) (*Schema, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.schemas[name]
	if !ok {
		return nil, fmt.Errorf("%w: schema %q", ErrUnknown, name)
	}
	return s, nil
}

// Schemas lists schema names in lexical order.
func (c *Catalog) Schemas() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.schemas))
	for name := range c.schemas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefineClass validates and adds a class to the named schema. Validation
// covers: unique class name; non-empty, unique attribute names; parent
// existence; reference targets resolvable in the schema (the class itself
// counts, enabling self-references); tuple fields recursively valid.
func (c *Catalog) DefineClass(schemaName string, cls Class) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.schemas[schemaName]
	if !ok {
		return fmt.Errorf("%w: schema %q", ErrUnknown, schemaName)
	}
	if cls.Name == "" {
		return fmt.Errorf("%w: empty class name", ErrInvalidClass)
	}
	if _, ok := s.classes[cls.Name]; ok {
		return fmt.Errorf("%w: class %q in schema %q", ErrDuplicate, cls.Name, schemaName)
	}
	if cls.Parent != "" {
		if _, ok := s.classes[cls.Parent]; !ok {
			return fmt.Errorf("%w: parent class %q of %q", ErrUnknown, cls.Parent, cls.Name)
		}
	}
	seen := map[string]bool{}
	// Inherited names must not be shadowed.
	if cls.Parent != "" {
		inherited, err := s.EffectiveAttrs(cls.Parent)
		if err != nil {
			return err
		}
		for _, a := range inherited {
			seen[a.Name] = true
		}
	}
	for _, a := range cls.Attrs {
		if a.Name == "" {
			return fmt.Errorf("%w: class %q has an unnamed attribute", ErrInvalidClass, cls.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("%w: attribute %q duplicated in class %q", ErrInvalidClass, a.Name, cls.Name)
		}
		seen[a.Name] = true
		if err := validateType(s, cls.Name, a.Type); err != nil {
			return fmt.Errorf("attribute %q of class %q: %w", a.Name, cls.Name, err)
		}
	}
	mseen := map[string]bool{}
	for _, m := range cls.Methods {
		if m.Name == "" {
			return fmt.Errorf("%w: class %q has an unnamed method", ErrInvalidClass, cls.Name)
		}
		if mseen[m.Name] {
			return fmt.Errorf("%w: method %q duplicated in class %q", ErrInvalidClass, m.Name, cls.Name)
		}
		mseen[m.Name] = true
	}
	stored := cls // copy
	s.classes[cls.Name] = &stored
	s.order = append(s.order, cls.Name)
	return nil
}

func validateType(s *Schema, selfClass string, t AttrType) error {
	switch t.Kind {
	case KindInteger, KindFloat, KindText, KindBool, KindGeometry, KindBitmap:
		return nil
	case KindTuple:
		if len(t.Fields) == 0 {
			return fmt.Errorf("%w: empty tuple", ErrInvalidClass)
		}
		names := map[string]bool{}
		for _, f := range t.Fields {
			if f.Name == "" {
				return fmt.Errorf("%w: unnamed tuple field", ErrInvalidClass)
			}
			if names[f.Name] {
				return fmt.Errorf("%w: duplicate tuple field %q", ErrInvalidClass, f.Name)
			}
			names[f.Name] = true
			if f.Type.Kind == KindTuple {
				return fmt.Errorf("%w: nested tuples are not supported", ErrInvalidClass)
			}
			if err := validateType(s, selfClass, f.Type); err != nil {
				return err
			}
		}
		return nil
	case KindReference:
		if t.RefClass == selfClass {
			return nil // self reference
		}
		if _, ok := s.classes[t.RefClass]; !ok {
			return fmt.Errorf("%w: reference target class %q", ErrUnknown, t.RefClass)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown kind %v", ErrInvalidClass, t.Kind)
	}
}

// DescribeClass renders a class in the style of the paper's Figure 5, e.g.
//
//	Class Pole {
//	  pole_type: integer;
//	  ...
//	  Methods: get_supplier_name(Supplier);
//	}
func (s *Schema) DescribeClass(name string) (string, error) {
	c, err := s.Class(name)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Class %s", c.Name)
	if c.Parent != "" {
		fmt.Fprintf(&b, " isa %s", c.Parent)
	}
	b.WriteString(" {\n")
	for _, a := range c.Attrs {
		fmt.Fprintf(&b, "  %s: %s;\n", a.Name, a.Type)
	}
	if len(c.Methods) > 0 {
		b.WriteString("  Methods:")
		for i, m := range c.Methods {
			if i > 0 {
				b.WriteString(";")
			}
			fmt.Fprintf(&b, " %s(%s)", m.Name, strings.Join(m.Params, ", "))
		}
		b.WriteString(";\n")
	}
	b.WriteString("}")
	return b.String(), nil
}
