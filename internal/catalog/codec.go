package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// This file implements the record codec: the serialization of an instance's
// attribute values into heap-file record bytes and back. The layout is
// self-describing per value (a kind tag precedes each payload) so that a
// record survives benign schema evolution such as appending attributes.
//
// Record layout:
//
//	uvarint attrCount
//	attrCount × value
//
// Value layout: 1 byte kind tag (0 = null), then a kind-specific payload.

// ErrBadRecord is wrapped by every decode failure.
var ErrBadRecord = errors.New("catalog: malformed record")

// EncodeRecord serializes values in attribute order.
func EncodeRecord(values []Value) ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = binary.AppendUvarint(buf, uint64(len(values)))
	var err error
	for i, v := range values {
		buf, err = appendValue(buf, v)
		if err != nil {
			return nil, fmt.Errorf("attr %d: %w", i, err)
		}
	}
	return buf, nil
}

func appendValue(buf []byte, v Value) ([]byte, error) {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case 0:
		return buf, nil
	case KindInteger:
		return binary.AppendVarint(buf, v.Int), nil
	case KindFloat:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float)), nil
	case KindText:
		buf = binary.AppendUvarint(buf, uint64(len(v.Text)))
		return append(buf, v.Text...), nil
	case KindBool:
		if v.Bool {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case KindTuple:
		buf = binary.AppendUvarint(buf, uint64(len(v.Tuple)))
		var err error
		for _, c := range v.Tuple {
			buf, err = appendValue(buf, c)
			if err != nil {
				return nil, err
			}
		}
		return buf, nil
	case KindReference:
		return binary.AppendUvarint(buf, uint64(v.Ref)), nil
	case KindGeometry:
		return appendGeometry(buf, v.Geom)
	case KindBitmap:
		buf = binary.AppendUvarint(buf, uint64(len(v.Bitmap)))
		return append(buf, v.Bitmap...), nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, v.Kind)
	}
}

// Geometry payload: 1 byte geometry type (0 = nil), then coordinates.
func appendGeometry(buf []byte, g geom.Geometry) ([]byte, error) {
	if g == nil {
		return append(buf, 0), nil
	}
	buf = append(buf, byte(g.GeomType()))
	switch gg := g.(type) {
	case geom.Point:
		return appendPoint(buf, gg), nil
	case geom.MultiPoint:
		buf = binary.AppendUvarint(buf, uint64(len(gg)))
		for _, p := range gg {
			buf = appendPoint(buf, p)
		}
		return buf, nil
	case geom.LineString:
		buf = binary.AppendUvarint(buf, uint64(len(gg)))
		for _, p := range gg {
			buf = appendPoint(buf, p)
		}
		return buf, nil
	case geom.Polygon:
		buf = binary.AppendUvarint(buf, uint64(1+len(gg.Holes)))
		buf = appendRing(buf, gg.Outer)
		for _, h := range gg.Holes {
			buf = appendRing(buf, h)
		}
		return buf, nil
	case geom.Rect:
		buf = appendPoint(buf, gg.Min)
		return appendPoint(buf, gg.Max), nil
	default:
		return nil, fmt.Errorf("%w: unsupported geometry %T", ErrBadRecord, g)
	}
}

func appendPoint(buf []byte, p geom.Point) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
}

func appendRing(buf []byte, r geom.Ring) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, p := range r {
		buf = appendPoint(buf, p)
	}
	return buf
}

// DecodeRecord parses a record produced by EncodeRecord.
func DecodeRecord(data []byte) ([]Value, error) {
	d := &decoder{buf: data}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("%w: attr count %d exceeds record size", ErrBadRecord, n)
	}
	values := make([]Value, n)
	for i := range values {
		values[i], err = d.value()
		if err != nil {
			return nil, fmt.Errorf("attr %d: %w", i, err)
		}
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(data)-d.pos)
	}
	return values, nil
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrBadRecord)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrBadRecord)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrBadRecord)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) float() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, fmt.Errorf("%w: truncated float", ErrBadRecord)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v, nil
}

func (d *decoder) bytes(n uint64) ([]byte, error) {
	if uint64(d.pos)+n > uint64(len(d.buf)) {
		return nil, fmt.Errorf("%w: truncated bytes(%d)", ErrBadRecord, n)
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

func (d *decoder) point() (geom.Point, error) {
	x, err := d.float()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := d.float()
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Point{X: x, Y: y}, nil
}

func (d *decoder) value() (Value, error) {
	tag, err := d.byte()
	if err != nil {
		return Value{}, err
	}
	switch Kind(tag) {
	case 0:
		return Null, nil
	case KindInteger:
		i, err := d.varint()
		return IntVal(i), err
	case KindFloat:
		f, err := d.float()
		return FloatVal(f), err
	case KindText:
		n, err := d.uvarint()
		if err != nil {
			return Value{}, err
		}
		b, err := d.bytes(n)
		return TextVal(string(b)), err
	case KindBool:
		b, err := d.byte()
		return BoolVal(b != 0), err
	case KindTuple:
		n, err := d.uvarint()
		if err != nil {
			return Value{}, err
		}
		if n > uint64(len(d.buf)) {
			return Value{}, fmt.Errorf("%w: tuple arity %d", ErrBadRecord, n)
		}
		vs := make([]Value, n)
		for i := range vs {
			vs[i], err = d.value()
			if err != nil {
				return Value{}, err
			}
		}
		return TupleVal(vs...), nil
	case KindReference:
		oid, err := d.uvarint()
		return RefVal(OID(oid)), err
	case KindGeometry:
		g, err := d.geometry()
		if err != nil {
			return Value{}, err
		}
		return GeomVal(g), nil
	case KindBitmap:
		n, err := d.uvarint()
		if err != nil {
			return Value{}, err
		}
		b, err := d.bytes(n)
		if err != nil {
			return Value{}, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return BitmapVal(out), nil
	default:
		return Value{}, fmt.Errorf("%w: unknown kind tag %d", ErrBadRecord, tag)
	}
}

func (d *decoder) geometry() (geom.Geometry, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch geom.Type(tag) {
	case 0:
		return nil, nil
	case geom.TypePoint:
		return d.point()
	case geom.TypeMultiPoint:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n*16 > uint64(len(d.buf)) {
			return nil, fmt.Errorf("%w: multipoint size %d", ErrBadRecord, n)
		}
		mp := make(geom.MultiPoint, n)
		for i := range mp {
			mp[i], err = d.point()
			if err != nil {
				return nil, err
			}
		}
		return mp, nil
	case geom.TypeLineString:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n*16 > uint64(len(d.buf)) {
			return nil, fmt.Errorf("%w: linestring size %d", ErrBadRecord, n)
		}
		ls := make(geom.LineString, n)
		for i := range ls {
			ls[i], err = d.point()
			if err != nil {
				return nil, err
			}
		}
		return ls, nil
	case geom.TypePolygon:
		rings, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if rings == 0 || rings > uint64(len(d.buf)) {
			return nil, fmt.Errorf("%w: polygon with %d rings", ErrBadRecord, rings)
		}
		read := func() (geom.Ring, error) {
			n, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if n*16 > uint64(len(d.buf)) {
				return nil, fmt.Errorf("%w: ring size %d", ErrBadRecord, n)
			}
			r := make(geom.Ring, n)
			for i := range r {
				r[i], err = d.point()
				if err != nil {
					return nil, err
				}
			}
			return r, nil
		}
		outer, err := read()
		if err != nil {
			return nil, err
		}
		pg := geom.Polygon{Outer: outer}
		for i := uint64(1); i < rings; i++ {
			h, err := read()
			if err != nil {
				return nil, err
			}
			pg.Holes = append(pg.Holes, h)
		}
		return pg, nil
	case geom.TypeRect:
		min, err := d.point()
		if err != nil {
			return nil, err
		}
		max, err := d.point()
		if err != nil {
			return nil, err
		}
		return geom.Rect{Min: min, Max: max}, nil
	default:
		return nil, fmt.Errorf("%w: unknown geometry tag %d", ErrBadRecord, tag)
	}
}
