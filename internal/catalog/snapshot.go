package catalog

import (
	"encoding/json"
	"fmt"
)

// This file serializes catalog contents so a database file can carry its own
// metadata: the geodb layer stores the snapshot as a reserved record and
// restores it when reopening the file.

// Snapshot is the serializable form of a catalog.
type Snapshot struct {
	Schemas []SchemaSnapshot `json:"schemas"`
}

// SchemaSnapshot is one schema with its classes in declaration order.
type SchemaSnapshot struct {
	Name    string  `json:"name"`
	Classes []Class `json:"classes"`
}

// Snapshot captures the catalog's current contents.
func (c *Catalog) Snapshot() Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var snap Snapshot
	// Schemas() would re-lock; iterate directly in sorted order.
	names := make([]string, 0, len(c.schemas))
	for name := range c.schemas {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		s := c.schemas[name]
		ss := SchemaSnapshot{Name: name}
		for _, className := range s.order {
			ss.Classes = append(ss.Classes, *s.classes[className])
		}
		snap.Schemas = append(snap.Schemas, ss)
	}
	return snap
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MarshalSnapshot renders the snapshot as JSON.
func MarshalSnapshot(s Snapshot) ([]byte, error) {
	return json.Marshal(s)
}

// UnmarshalSnapshot parses a snapshot document.
func UnmarshalSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("catalog: decode snapshot: %w", err)
	}
	return s, nil
}

// Restore loads a snapshot into an empty catalog, re-validating every
// definition (a corrupted or hand-edited snapshot fails cleanly).
func (c *Catalog) Restore(s Snapshot) error {
	for _, ss := range s.Schemas {
		if _, err := c.DefineSchema(ss.Name); err != nil {
			return err
		}
		for _, cls := range ss.Classes {
			if err := c.DefineClass(ss.Name, cls); err != nil {
				return fmt.Errorf("restore class %s.%s: %w", ss.Name, cls.Name, err)
			}
		}
	}
	return nil
}
