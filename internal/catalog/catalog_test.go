package catalog

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/geom"
)

// poleClass reproduces the paper's Figure 5 class definition.
func poleClass() Class {
	return Class{
		Name: "Pole",
		Attrs: []Field{
			F("pole_type", Scalar(KindInteger)),
			F("pole_composition", TupleOf(
				F("pole_material", Scalar(KindText)),
				F("pole_diameter", Scalar(KindFloat)),
				F("pole_height", Scalar(KindFloat)),
			)),
			F("pole_supplier", RefTo("Supplier")),
			F("pole_location", Scalar(KindGeometry)),
			F("pole_picture", Scalar(KindBitmap)),
			F("pole_historic", Scalar(KindText)),
		},
		Methods: []Method{{Name: "get_supplier_name", Params: []string{"Supplier"}}},
	}
}

func newPhoneNet(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if _, err := c.DefineSchema("phone_net"); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineClass("phone_net", Class{
		Name:  "Supplier",
		Attrs: []Field{F("name", Scalar(KindText)), F("city", Scalar(KindText))},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineClass("phone_net", poleClass()); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefineSchemaAndClass(t *testing.T) {
	c := newPhoneNet(t)
	s, err := c.Schema("phone_net")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Classes(); len(got) != 2 || got[0] != "Supplier" || got[1] != "Pole" {
		t.Fatalf("classes = %v", got)
	}
	pole, err := s.Class("Pole")
	if err != nil {
		t.Fatal(err)
	}
	if len(pole.Attrs) != 6 {
		t.Fatalf("pole attrs = %d", len(pole.Attrs))
	}
	if attr, ok := pole.Attr("pole_location"); !ok || attr.Type.Kind != KindGeometry {
		t.Fatal("pole_location should be Geometry")
	}
	if ga, ok := pole.GeometryAttr(); !ok || ga != "pole_location" {
		t.Fatalf("geometry attr = %q, %v", ga, ok)
	}
	if _, ok := pole.Method("get_supplier_name"); !ok {
		t.Fatal("method missing")
	}
}

func TestDuplicateAndUnknown(t *testing.T) {
	c := newPhoneNet(t)
	if _, err := c.DefineSchema("phone_net"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate schema: %v", err)
	}
	if err := c.DefineClass("phone_net", Class{Name: "Pole"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate class: %v", err)
	}
	if err := c.DefineClass("nowhere", Class{Name: "X"}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown schema: %v", err)
	}
	if _, err := c.Schema("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown schema lookup: %v", err)
	}
	s, _ := c.Schema("phone_net")
	if _, err := s.Class("Duct"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown class: %v", err)
	}
}

func TestClassValidation(t *testing.T) {
	c := New()
	c.DefineSchema("s")
	cases := []Class{
		{Name: ""},
		{Name: "A", Attrs: []Field{F("", Scalar(KindText))}},
		{Name: "B", Attrs: []Field{F("x", Scalar(KindText)), F("x", Scalar(KindInteger))}},
		{Name: "C", Attrs: []Field{F("r", RefTo("Missing"))}},
		{Name: "D", Attrs: []Field{F("t", TupleOf())}},
		{Name: "E", Attrs: []Field{F("t", TupleOf(F("a", Scalar(KindText)), F("a", Scalar(KindText))))}},
		{Name: "G", Attrs: []Field{F("t", TupleOf(F("a", TupleOf(F("b", Scalar(KindText))))))}},
		{Name: "H", Parent: "Missing"},
		{Name: "I", Methods: []Method{{Name: ""}}},
		{Name: "J", Methods: []Method{{Name: "m"}, {Name: "m"}}},
	}
	for i, cls := range cases {
		if err := c.DefineClass("s", cls); err == nil {
			t.Errorf("case %d (%s): invalid class accepted", i, cls.Name)
		}
	}
	// Self reference is legal.
	if err := c.DefineClass("s", Class{Name: "Node", Attrs: []Field{F("next", RefTo("Node"))}}); err != nil {
		t.Fatalf("self reference: %v", err)
	}
}

func TestInheritance(t *testing.T) {
	c := New()
	c.DefineSchema("net")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.DefineClass("net", Class{
		Name:    "NetworkElement",
		Attrs:   []Field{F("id_code", Scalar(KindInteger)), F("location", Scalar(KindGeometry))},
		Methods: []Method{{Name: "describe"}},
	}))
	must(c.DefineClass("net", Class{
		Name:    "Pole",
		Parent:  "NetworkElement",
		Attrs:   []Field{F("height", Scalar(KindFloat))},
		Methods: []Method{{Name: "describe"}, {Name: "paint"}},
	}))
	s, _ := c.Schema("net")
	attrs, err := s.EffectiveAttrs("Pole")
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 3 || attrs[0].Name != "id_code" || attrs[2].Name != "height" {
		t.Fatalf("effective attrs = %v", attrs)
	}
	methods, err := s.EffectiveMethods("Pole")
	if err != nil {
		t.Fatal(err)
	}
	if len(methods) != 2 {
		t.Fatalf("effective methods = %v", methods)
	}
	if !s.IsSubclassOf("Pole", "NetworkElement") {
		t.Fatal("Pole should be a NetworkElement")
	}
	if s.IsSubclassOf("NetworkElement", "Pole") {
		t.Fatal("upward subclass test must fail")
	}
	if !s.IsSubclassOf("Pole", "Pole") {
		t.Fatal("class is subclass of itself")
	}
	// Shadowing an inherited attribute is rejected.
	err = c.DefineClass("net", Class{
		Name:   "BadPole",
		Parent: "NetworkElement",
		Attrs:  []Field{F("id_code", Scalar(KindText))},
	})
	if !errors.Is(err, ErrInvalidClass) {
		t.Fatalf("shadowing: %v", err)
	}
}

func TestDescribeClassFigure5(t *testing.T) {
	c := newPhoneNet(t)
	s, _ := c.Schema("phone_net")
	desc, err := s.DescribeClass("Pole")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Class Pole {",
		"pole_type: integer;",
		"pole_composition: tuple(pole_material: text; pole_diameter: float; pole_height: float);",
		"pole_supplier: Supplier;",
		"pole_location: Geometry;",
		"pole_picture: bitmap;",
		"pole_historic: text;",
		"Methods: get_supplier_name(Supplier);",
	} {
		if !strings.Contains(desc, want) {
			t.Errorf("DescribeClass missing %q in:\n%s", want, desc)
		}
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"integer": KindInteger, "int": KindInteger,
		"float": KindFloat, "TEXT": KindText, "bool": KindBool,
		"geometry": KindGeometry, "bitmap": KindBitmap,
	} {
		if k, ok := ParseKind(name); !ok || k != want {
			t.Errorf("ParseKind(%q) = %v, %v", name, k, ok)
		}
	}
	if _, ok := ParseKind("tuple"); ok {
		t.Fatal("tuple is structural, not parseable")
	}
}

func TestAttrTypeEqualAndString(t *testing.T) {
	tup := TupleOf(F("a", Scalar(KindText)), F("b", Scalar(KindFloat)))
	if !tup.Equal(TupleOf(F("a", Scalar(KindText)), F("b", Scalar(KindFloat)))) {
		t.Fatal("equal tuples")
	}
	if tup.Equal(TupleOf(F("a", Scalar(KindText)))) {
		t.Fatal("different arity")
	}
	if tup.Equal(TupleOf(F("x", Scalar(KindText)), F("b", Scalar(KindFloat)))) {
		t.Fatal("different field name")
	}
	if got := tup.String(); got != "tuple(a: text; b: float)" {
		t.Fatalf("tuple string = %q", got)
	}
	if got := RefTo("Supplier").String(); got != "Supplier" {
		t.Fatalf("ref string = %q", got)
	}
}

func TestValueStringAndEqual(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{IntVal(42), "42"},
		{FloatVal(2.5), "2.5"},
		{TextVal("hi"), "hi"},
		{BoolVal(true), "true"},
		{TupleVal(TextVal("wood"), FloatVal(0.3)), "(wood, 0.3)"},
		{RefVal(7), "ref:7"},
		{RefVal(NilOID), "ref:nil"},
		{GeomVal(geom.Pt(1, 2)), "POINT (1 2)"},
		{BitmapVal([]byte{1, 2, 3}), "bitmap[3B]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
		if !c.v.Equal(c.v) {
			t.Errorf("value %q not equal to itself", c.want)
		}
	}
	if IntVal(1).Equal(FloatVal(1)) {
		t.Fatal("cross-kind equality")
	}
	if TupleVal(IntVal(1)).Equal(TupleVal(IntVal(2))) {
		t.Fatal("tuple inequality")
	}
	if !GeomVal(nil).Equal(GeomVal(nil)) {
		t.Fatal("nil geometries equal")
	}
	if GeomVal(nil).Equal(GeomVal(geom.Pt(0, 0))) {
		t.Fatal("nil vs point")
	}
}

func TestConforms(t *testing.T) {
	tup := TupleOf(F("m", Scalar(KindText)), F("d", Scalar(KindFloat)))
	if err := TupleVal(TextVal("wood"), FloatVal(1)).Conforms(tup); err != nil {
		t.Fatal(err)
	}
	if err := TupleVal(TextVal("wood")).Conforms(tup); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("arity mismatch: %v", err)
	}
	if err := TupleVal(IntVal(1), FloatVal(1)).Conforms(tup); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("component mismatch: %v", err)
	}
	if err := Null.Conforms(Scalar(KindGeometry)); err != nil {
		t.Fatalf("null conforms to anything: %v", err)
	}
	if err := TextVal("x").Conforms(Scalar(KindInteger)); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("kind mismatch: %v", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	values := []Value{
		IntVal(-7),
		FloatVal(3.25),
		TextVal("concrete"),
		BoolVal(true),
		TupleVal(TextVal("wood"), FloatVal(0.3), FloatVal(9.5)),
		RefVal(99),
		GeomVal(geom.Pt(10, 20)),
		GeomVal(geom.LineString{geom.Pt(0, 0), geom.Pt(5, 5)}),
		GeomVal(geom.Polygon{
			Outer: geom.Ring{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4)},
			Holes: []geom.Ring{{geom.Pt(1, 1), geom.Pt(2, 1), geom.Pt(2, 2)}},
		}),
		GeomVal(geom.MultiPoint{geom.Pt(1, 1), geom.Pt(2, 2)}),
		GeomVal(geom.R(0, 0, 3, 3)),
		GeomVal(nil),
		BitmapVal([]byte{0xde, 0xad, 0xbe, 0xef}),
		Null,
	}
	data, err := EncodeRecord(values)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(values) {
		t.Fatalf("decoded %d values, want %d", len(back), len(values))
	}
	for i := range values {
		if !values[i].Equal(back[i]) {
			t.Errorf("value %d: %v != %v", i, values[i], back[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // huge count
		{1, 99},        // unknown kind tag
		{1, 1},         // integer with no payload... varint of empty
		{2, 1, 2, 3},   // two attrs declared, one present
		{1, 3, 5, 'a'}, // text length 5, one byte
	}
	for i, b := range bad {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Trailing bytes rejected.
	data, _ := EncodeRecord([]Value{IntVal(1)})
	if _, err := DecodeRecord(append(data, 0)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestDecodeTruncatedEverywhere(t *testing.T) {
	values := []Value{
		IntVal(123456), TextVal("hello"), GeomVal(geom.LineString{geom.Pt(0, 0), geom.Pt(1, 1)}),
		TupleVal(BoolVal(true), FloatVal(2.5)), BitmapVal([]byte{1, 2, 3}),
	}
	data, err := EncodeRecord(values)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeRecord(data[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(data))
		}
	}
}

func TestCatalogSchemasSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.DefineSchema(n); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Schemas()
	if len(got) != 3 || got[0] != "alpha" || got[1] != "mid" || got[2] != "zeta" {
		t.Fatalf("schemas = %v", got)
	}
}
