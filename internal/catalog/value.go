package catalog

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/geom"
)

// OID identifies an object instance in the geographic database. Zero is
// "no object" (a null reference).
type OID uint64

// NilOID is the null reference.
const NilOID OID = 0

// ErrTypeMismatch is returned when a value does not conform to an AttrType.
var ErrTypeMismatch = errors.New("catalog: value does not match attribute type")

// Value is the runtime representation of an attribute value: a tagged union
// over the catalog kinds. The zero Value is an untyped null (Kind == 0),
// which conforms to any attribute type.
type Value struct {
	Kind   Kind
	Int    int64
	Float  float64
	Text   string
	Bool   bool
	Tuple  []Value
	Ref    OID
	Geom   geom.Geometry
	Bitmap []byte
}

// Null is the untyped null value.
var Null = Value{}

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == 0 }

// Constructors for each kind.

// IntVal wraps an integer.
func IntVal(i int64) Value { return Value{Kind: KindInteger, Int: i} }

// FloatVal wraps a float.
func FloatVal(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// TextVal wraps a text string.
func TextVal(s string) Value { return Value{Kind: KindText, Text: s} }

// BoolVal wraps a boolean.
func BoolVal(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// TupleVal wraps an ordered tuple of component values.
func TupleVal(vs ...Value) Value { return Value{Kind: KindTuple, Tuple: vs} }

// RefVal wraps an object reference.
func RefVal(oid OID) Value { return Value{Kind: KindReference, Ref: oid} }

// GeomVal wraps a geometry.
func GeomVal(g geom.Geometry) Value { return Value{Kind: KindGeometry, Geom: g} }

// BitmapVal wraps raw image bytes.
func BitmapVal(b []byte) Value { return Value{Kind: KindBitmap, Bitmap: b} }

// String renders the value for display in Instance windows and logs.
func (v Value) String() string {
	switch v.Kind {
	case 0:
		return "null"
	case KindInteger:
		return fmt.Sprintf("%d", v.Int)
	case KindFloat:
		return trimZeros(fmt.Sprintf("%.6f", v.Float))
	case KindText:
		return v.Text
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	case KindTuple:
		parts := make([]string, len(v.Tuple))
		for i, c := range v.Tuple {
			parts[i] = c.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case KindReference:
		if v.Ref == NilOID {
			return "ref:nil"
		}
		return fmt.Sprintf("ref:%d", v.Ref)
	case KindGeometry:
		if v.Geom == nil {
			return "GEOMETRY EMPTY"
		}
		return v.Geom.WKT()
	case KindBitmap:
		return fmt.Sprintf("bitmap[%dB]", len(v.Bitmap))
	default:
		return fmt.Sprintf("Value(kind=%d)", v.Kind)
	}
}

func trimZeros(s string) string {
	i := len(s)
	for i > 0 && s[i-1] == '0' {
		i--
	}
	if i > 0 && s[i-1] == '.' {
		i--
	}
	return s[:i]
}

// Equal reports deep value equality. Geometries compare by WKT.
func (v Value) Equal(u Value) bool {
	if v.Kind != u.Kind {
		return false
	}
	switch v.Kind {
	case 0:
		return true
	case KindInteger:
		return v.Int == u.Int
	case KindFloat:
		return v.Float == u.Float
	case KindText:
		return v.Text == u.Text
	case KindBool:
		return v.Bool == u.Bool
	case KindTuple:
		if len(v.Tuple) != len(u.Tuple) {
			return false
		}
		for i := range v.Tuple {
			if !v.Tuple[i].Equal(u.Tuple[i]) {
				return false
			}
		}
		return true
	case KindReference:
		return v.Ref == u.Ref
	case KindGeometry:
		if (v.Geom == nil) != (u.Geom == nil) {
			return false
		}
		return v.Geom == nil || v.Geom.WKT() == u.Geom.WKT()
	case KindBitmap:
		if len(v.Bitmap) != len(u.Bitmap) {
			return false
		}
		for i := range v.Bitmap {
			if v.Bitmap[i] != u.Bitmap[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Conforms checks v against attribute type t. Null conforms to everything.
func (v Value) Conforms(t AttrType) error {
	if v.IsNull() {
		return nil
	}
	if v.Kind != t.Kind {
		return fmt.Errorf("%w: have %v, want %v", ErrTypeMismatch, v.Kind, t.Kind)
	}
	if t.Kind == KindTuple {
		if len(v.Tuple) != len(t.Fields) {
			return fmt.Errorf("%w: tuple arity %d, want %d", ErrTypeMismatch, len(v.Tuple), len(t.Fields))
		}
		for i, c := range v.Tuple {
			if err := c.Conforms(t.Fields[i].Type); err != nil {
				return fmt.Errorf("tuple field %q: %w", t.Fields[i].Name, err)
			}
		}
	}
	return nil
}
