// End-to-end acceptance test for the tracing layer (DESIGN.md §12): a
// Figure-6 interaction through the public gisui API against a live
// weak-integration server yields ONE trace crossing client → server →
// rule-engine dispatch (cache verdict visible) → database → WAL commit,
// retrievable over the trace protocol verb.
package gisui_test

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	gisui "repro"
	"repro/internal/catalog"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/workload"
)

// spanByName returns the first span with the given name.
func spanByName(td obs.TraceData, name string) (obs.Span, bool) {
	for _, sp := range td.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return obs.Span{}, false
}

// attr returns the value of a span attribute.
func attr(sp obs.Span, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

func TestEndToEndTraceAcrossProcessesAndLayers(t *testing.T) {
	lib, err := workload.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	// File-backed with WAL on, so a committed scenario reaches a WAL fsync.
	sys := gisui.MustOpen(gisui.Config{
		Name: "GEO", Path: filepath.Join(t.TempDir(), "geo.db"), Library: lib,
	})
	defer sys.Close()
	if _, err := workload.BuildPhoneNet(sys.DB, workload.PhoneNetOptions{
		Seed: 1997, ZonesPerSide: 1, PolesPerZone: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.InstallDirectives(workload.Figure6Source); err != nil {
		t.Fatal(err)
	}
	ts := sys.EnableTracing(obs.TailSamplerOptions{SlowestN: 32, HeadRate: 0})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.NewServer()
	go srv.Serve(l)
	defer srv.Close()

	sess, cli, err := gisui.RemoteSessionOptions(l.Addr().String(), lib,
		gisui.Context("juliano", "", "pole_manager"), gisui.ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Both processes share this test binary, so one sampler can collect
	// both halves of every trace: client/UI spans join the server's sink.
	cli.Tracer().AttachSink(ts)

	if err := sess.Connect(); err != nil {
		t.Fatal(err)
	}
	// The Figure-6 interaction, twice: the first dispatch is a decision-
	// cache miss, the second a hit — both visible in the trace.
	if _, err := sess.OpenClass(workload.SchemaName, "Pole"); err != nil {
		t.Fatal(err)
	}
	if err := sess.CloseWindow("classset:Pole"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.OpenClass(workload.SchemaName, "Pole"); err != nil {
		t.Fatal(err)
	}
	// A scenario commit drives the mutation path: wire verb → db.Insert →
	// WAL commit.
	if err := sess.StartScenario("expansion"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ScenarioInsert(workload.SchemaName, "Pole", []catalog.Value{
		catalog.Null, catalog.Null, catalog.Null,
		catalog.GeomVal(geom.Pt(3, 4)),
		catalog.Null, catalog.Null,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.CommitScenario(); err != nil {
		t.Fatal(err)
	}

	// Retrieve the retained traces over the trace verb (the wire path a
	// gisbrowse `trace` command takes). Server request spans finish after
	// the response frame leaves, so poll briefly for the commit trace.
	var commit obs.TraceData
	deadline := time.Now().Add(2 * time.Second)
	for {
		traces, err := cli.Traces()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, td := range traces {
			if _, ok := spanByName(td, "ui.commit_scenario"); !ok {
				continue
			}
			if _, ok := spanByName(td, "server.scenario_insert"); ok {
				commit, found = td, true
				break
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no complete commit trace among %d retained traces", len(traces))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// One coherent tree: every layer present, all on one trace ID, each
	// span parented on the layer above it.
	uiSpan, _ := spanByName(commit, "ui.commit_scenario")
	cliSpan, okCli := spanByName(commit, "client.scenario_insert")
	srvSpan, okSrv := spanByName(commit, "server.scenario_insert")
	dbSpan, okDB := spanByName(commit, "geodb.insert")
	walSpan, okWAL := spanByName(commit, "wal.commit")
	if !okCli || !okSrv || !okDB || !okWAL {
		names := make([]string, 0, len(commit.Spans))
		for _, sp := range commit.Spans {
			names = append(names, sp.Name)
		}
		t.Fatalf("commit trace misses a layer (client %v server %v db %v wal %v): %v",
			okCli, okSrv, okDB, okWAL, names)
	}
	for _, sp := range commit.Spans {
		if sp.Trace != commit.TraceID {
			t.Errorf("span %q on trace %x, want %x", sp.Name, sp.Trace, commit.TraceID)
		}
	}
	if cliSpan.Parent != uiSpan.ID {
		t.Errorf("client span parent = %x, want the UI interaction %x", cliSpan.Parent, uiSpan.ID)
	}
	attempt, okAtt := spanByName(commit, "client.attempt")
	if !okAtt || srvSpan.Parent != attempt.ID {
		t.Errorf("server span parent = %x, want the client attempt (%v)", srvSpan.Parent, okAtt)
	}
	if dbSpan.Parent != srvSpan.ID {
		t.Errorf("geodb span parent = %x, want the server span %x", dbSpan.Parent, srvSpan.ID)
	}
	if walSpan.Parent != dbSpan.ID {
		t.Errorf("wal span parent = %x, want the geodb span %x", walSpan.Parent, dbSpan.ID)
	}

	// The decision cache's verdicts are visible on the dispatch spans of
	// the two class opens: first a miss, then a hit.
	var verdicts []string
	for _, td := range mustTraces(t, cli) {
		if _, ok := spanByName(td, "ui.open_class"); !ok {
			continue
		}
		for _, sp := range td.Spans {
			if sp.Name == "active.dispatch" && attr(sp, "class") == "Pole" {
				if v := attr(sp, "cache"); v != "" {
					verdicts = append(verdicts, v)
				}
			}
		}
	}
	if len(verdicts) < 2 || verdicts[0] != "miss" || verdicts[1] != "hit" {
		t.Errorf("dispatch cache verdicts = %v, want [miss hit ...]", verdicts)
	}

	// Single-trace fetch over the wire (the trace <id> command).
	td, err := cli.Trace(commit.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if td.TraceID != commit.TraceID || len(td.Spans) == 0 {
		t.Errorf("trace fetch by ID = %+v", td)
	}
	if _, err := cli.Trace(0xDEAD); err == nil {
		t.Error("fetching an unretained trace should fail")
	}

	// The whole export loads as Chrome trace_event JSON.
	if ts.Len() == 0 {
		t.Fatal("sampler empty at export time")
	}
}

// mustTraces fetches the retained traces over the trace verb.
func mustTraces(t *testing.T, cli interface {
	Traces() ([]obs.TraceData, error)
}) []obs.TraceData {
	t.Helper()
	traces, err := cli.Traces()
	if err != nil {
		t.Fatal(err)
	}
	return traces
}
