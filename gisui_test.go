// Figure-reproduction tests: each asserts the behavioral content of one of
// the paper's figures through the public API, mirroring the F1–F7 entries of
// EXPERIMENTS.md. TestAllExperimentsRun additionally executes the whole
// gisbench registry in quick mode.
package gisui_test

import (
	"bytes"
	"strings"
	"testing"

	gisui "repro"
	"repro/internal/experiments"
	"repro/internal/spec"
	"repro/internal/uikit"
	"repro/internal/workload"
)

func TestFigure1EventFlow(t *testing.T) {
	f := experiments.MustFixture(4, 1, true)
	defer f.Close()
	var engineLines []string
	f.Sys.Engine.Trace = func(s string) { engineLines = append(engineLines, s) }
	s := f.Sys.NewSession(experiments.JulianoCtx)
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenSchema(workload.SchemaName); err != nil {
		t.Fatal(err)
	}
	// The Figure 1 loop: a user event became DB events, the active
	// mechanism selected rules, the builder produced windows.
	joined := strings.Join(engineLines, "\n")
	if !strings.Contains(joined, "select customization rule") {
		t.Fatalf("active mechanism did not select rules:\n%s", joined)
	}
	if len(s.Windows()) != 2 {
		t.Fatalf("windows = %v", s.Windows())
	}
}

func TestFigure2Kernel(t *testing.T) {
	lib := gisui.Kernel()
	// Exactly the eight kernel classes of Figure 2.
	want := []string{"button", "drawing_area", "list", "menu", "menu_item", "panel", "text", "window"}
	got := lib.Names()
	if len(got) != len(want) {
		t.Fatalf("kernel = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kernel = %v, want %v", got, want)
		}
	}
	// The recursive Panel relationship: a panel may contain panels.
	outer := uikit.New(uikit.KindPanel, "outer").Add(
		uikit.New(uikit.KindPanel, "inner").Add(uikit.New(uikit.KindButton, "b")))
	if err := outer.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure4DefaultWindows(t *testing.T) {
	f := experiments.MustFixture(4, 1, false)
	defer f.Close()
	s := f.Sys.NewSession(experiments.MariaCtx)
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenSchema(workload.SchemaName); err != nil {
		t.Fatal(err)
	}
	if err := s.Interact("schema:"+workload.SchemaName, "classes", "select", "Pole"); err != nil {
		t.Fatal(err)
	}
	if err := s.Interact("classset:Pole", "map", "pick", uint64(f.Net.Poles[0])); err != nil {
		t.Fatal(err)
	}
	screen := s.Screen()
	// The three windows of Figure 4, all visible, with their signature
	// content: class list, map with poles as points, attribute panels.
	for _, want := range []string{
		`window schema:phone_net`,
		`window classset:Pole`,
		`window instance:Pole:`,
		`- Pole`,
		`[pointFormat]`,
		`panel attr:pole_composition`,
	} {
		if !strings.Contains(screen, want) {
			t.Errorf("Figure 4 screen missing %q", want)
		}
	}
	if strings.Contains(screen, "(hidden)") {
		t.Error("default windows must all be visible")
	}
}

func TestFigure6Compiles(t *testing.T) {
	f := experiments.MustFixture(1, 1, false)
	defer f.Close()
	units, err := f.Sys.Analyzer().CompileSource(workload.Figure6Source)
	if err != nil {
		t.Fatal(err)
	}
	rules := units[0].Rules
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	// R1 semantics per §4: build the schema window with NULL and trigger
	// Get_Class(Pole).
	c1, err := rules[0].Customize(experiments.JulianoEvent())
	if err != nil || c1.Schema.Display != spec.DisplayNull {
		t.Fatalf("R1 = %+v, %v", c1, err)
	}
	if len(c1.Schema.Classes) != 1 || c1.Schema.Classes[0] != "Pole" {
		t.Fatalf("R1 classes = %v", c1.Schema.Classes)
	}
	// R2 semantics: Build_Window(Class set, Pole, Pole_Widget, pointFormat).
	c2, _ := rules[1].Customize(experiments.JulianoEvent())
	if c2.Class.Control != "poleWidget" || c2.Class.Presentation != "pointFormat" {
		t.Fatalf("R2 = %+v", c2)
	}
}

func TestFigure7CustomizedWindows(t *testing.T) {
	f := experiments.MustFixture(4, 1, true)
	defer f.Close()
	s := f.Sys.NewSession(experiments.JulianoCtx)
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenSchema(workload.SchemaName); err != nil {
		t.Fatal(err)
	}
	if err := s.Interact("classset:Pole", "map", "pick", uint64(f.Net.Poles[0])); err != nil {
		t.Fatal(err)
	}
	screen := s.Screen()
	for _, want := range []string{
		`(hidden) schema:phone_net`, // R1: schema window built but not shown
		`slider poleWidget`,         // R2: custom control widget
		`[pointFormat]`,             // R2: presentation format
		`composed="true"`,           // instance rule: composed_text
		`on[notify->composed_text.notify]`,
	} {
		if !strings.Contains(screen, want) {
			t.Errorf("Figure 7 screen missing %q in:\n%s", want, screen)
		}
	}
	if strings.Contains(screen, "attr:pole_location") {
		t.Error("pole_location must be suppressed (display as Null)")
	}
}

func TestTransparency(t *testing.T) {
	// §3.5: "All the modules in the interface have exactly the same
	// behavior, with or without customization" — the same session code
	// serves both users; only the rule base differs.
	f := experiments.MustFixture(4, 1, true)
	defer f.Close()
	for _, ctx := range []gisui.Ctx{experiments.JulianoCtx, experiments.MariaCtx} {
		s := f.Sys.NewSession(ctx)
		if err := s.Connect(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.OpenSchema(workload.SchemaName); err != nil {
			t.Fatalf("ctx %s: %v", ctx, err)
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds; skipped in -short")
	}
	for _, e := range experiments.Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}
