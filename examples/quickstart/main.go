// Command quickstart is the smallest end-to-end use of the library: open a
// system, define a schema, insert spatial data, attach a session with the
// generic (uncustomized) interface, and browse schema → class → instance,
// printing each window as structured text.
package main

import (
	"fmt"
	"log"

	gisui "repro"
	"repro/internal/catalog"
	"repro/internal/geom"
	"repro/internal/render"
)

func main() {
	sys := gisui.MustOpen(gisui.Config{Name: "GEO"})
	defer sys.Close()

	// A tiny schema: parks with polygonal boundaries.
	if err := sys.DB.DefineSchema("city"); err != nil {
		log.Fatal(err)
	}
	if err := sys.DB.DefineClass("city", catalog.Class{
		Name: "Park",
		Attrs: []catalog.Field{
			catalog.F("name", catalog.Scalar(catalog.KindText)),
			catalog.F("area_ha", catalog.Scalar(catalog.KindFloat)),
			catalog.F("boundary", catalog.Scalar(catalog.KindGeometry)),
		},
	}); err != nil {
		log.Fatal(err)
	}

	ctx := gisui.Context("ana", "", "city_atlas")
	parks := []struct {
		name string
		ha   float64
		geom geom.Geometry
	}{
		{"Central", 12.5, geom.R(0, 0, 400, 300).AsPolygon()},
		{"Riverside", 4.2, geom.R(500, 100, 700, 260).AsPolygon()},
		{"Hilltop", 7.9, geom.Polygon{Outer: geom.Ring{
			geom.Pt(800, 0), geom.Pt(1000, 80), geom.Pt(900, 250)}}},
	}
	var first catalog.OID
	for i, p := range parks {
		oid, err := sys.DB.InsertMap(ctx, "city", "Park", map[string]catalog.Value{
			"name":     catalog.TextVal(p.name),
			"area_ha":  catalog.FloatVal(p.ha),
			"boundary": catalog.GeomVal(p.geom),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			first = oid
		}
	}

	// Attach a session and browse, exactly the paper's three-step pattern.
	s := sys.NewSession(ctx)
	if err := s.Connect(); err != nil {
		log.Fatal(err)
	}
	if _, err := s.OpenSchema("city"); err != nil {
		log.Fatal(err)
	}
	// Selecting "Park" in the schema window opens its Class set window.
	if err := s.Interact("schema:city", "classes", "select", "Park"); err != nil {
		log.Fatal(err)
	}
	// Picking the first park on the map opens its Instance window.
	if err := s.Interact("classset:Park", "map", "pick", uint64(first)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== screen ===")
	fmt.Println(s.Screen())

	// The Class set window's map as SVG (what a graphical display would
	// paint in the presentation area).
	win, err := s.Window("classset:Park")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== presentation area (SVG) ===")
	fmt.Println(render.SVG(win.Find("map"), render.SVGOptions{Width: 320, Height: 200, Labels: true}))

	fmt.Println("=== explanation mode ===")
	for _, line := range s.Explain() {
		fmt.Println(" ", line)
	}
}
