// Command openserver demonstrates the weak-integration (open GIS)
// deployment of §3.5: the geographic DBMS with its active rules runs as a
// server; the user interface is an external module connecting over the wire
// protocol, owning its own interface objects library. The customization
// selected by the server-side rules crosses the protocol as part of every
// (data, presentation) reply.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	gisui "repro"
	"repro/internal/workload"
)

func main() {
	// --- Server side: database + rules. ---
	lib, err := workload.StandardLibrary()
	if err != nil {
		log.Fatal(err)
	}
	sys := gisui.MustOpen(gisui.Config{Name: "GEO", Library: lib})
	defer sys.Close()
	if _, err := workload.BuildPhoneNet(sys.DB, workload.PhoneNetOptions{
		Seed: 2, ZonesPerSide: 1, PolesPerZone: 6}); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.InstallDirectives(workload.Figure6Source); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := sys.NewServer()
	go srv.Serve(l)
	defer srv.Close()
	fmt.Printf("geographic DBMS serving on %s\n\n", l.Addr())

	// --- Client side: an external UI with its own library. ---
	// The fault-tolerant transport options make the session survive server
	// restarts and transient link failures: retrieval requests get a
	// deadline, retry with backoff, and an automatic re-dial.
	clientLib, err := workload.StandardLibrary()
	if err != nil {
		log.Fatal(err)
	}
	session, cli, err := gisui.RemoteSessionOptions(l.Addr().String(), clientLib,
		gisui.Context("juliano", "", "pole_manager"),
		gisui.ClientOptions{
			Timeout: 5 * time.Second,
			Retry:   gisui.RetryPolicy{MaxAttempts: 4},
		})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	if err := session.Connect(); err != nil {
		log.Fatal(err)
	}
	if _, err := session.OpenSchema(workload.SchemaName); err != nil {
		log.Fatal(err)
	}
	fmt.Println("windows opened over the wire:")
	for _, name := range session.Windows() {
		w, _ := session.Window(name)
		fmt.Printf("  %-24s visible=%s widgets=%d\n", name, w.Prop("visible"), w.Count())
	}
	win, err := session.Window("classset:Pole")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPole class window control: %q (customization crossed the protocol)\n",
		win.Find("poleWidget").Kind)
	fmt.Printf("map shapes: %d, all in format %q\n",
		len(win.Find("map").Shapes), win.Find("map").Shapes[0].Format)
}
