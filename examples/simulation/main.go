// Command simulation demonstrates the simulation interaction mode of §2.2
// ("users build scenarios to test their hypotheses") together with the
// view-refresh rule family: a planner sketches a network build-out in a
// scenario, inspects the hypothetical map without touching the database,
// commits it through the constraint-guarded mutation path, and a second
// session's open window is refreshed by an active rule.
package main

import (
	"fmt"
	"log"

	gisui "repro"
	"repro/internal/catalog"
	"repro/internal/geom"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	lib, err := workload.StandardLibrary()
	if err != nil {
		log.Fatal(err)
	}
	sys := gisui.MustOpen(gisui.Config{Library: lib})
	defer sys.Close()
	net, err := workload.BuildPhoneNet(sys.DB, workload.PhoneNetOptions{
		Seed: 21, ZonesPerSide: 1, PolesPerZone: 5})
	if err != nil {
		log.Fatal(err)
	}
	// Constraint: poles must stand inside a zone — scenario commits are
	// guarded by it.
	if err := sys.AddConstraint(topo.Constraint{
		Name: "pole-in-zone", Schema: workload.SchemaName,
		Class: "Pole", With: "Zone", Relation: geom.Inside, Mode: topo.Require,
	}); err != nil {
		log.Fatal(err)
	}

	// An observer session keeps a Pole window open, watching for updates.
	observer := sys.NewSession(gisui.Context("observer", "", "pole_manager"))
	mustOK(observer.Connect())
	_, err = observer.OpenSchema(workload.SchemaName)
	mustOK(err)
	_, err = observer.OpenClass(workload.SchemaName, "Pole")
	mustOK(err)
	unwatch, err := observer.WatchUpdates(sys.Engine)
	mustOK(err)
	defer unwatch()

	// The planner builds a scenario.
	planner := sys.NewSession(gisui.Context("planner", "planners", "pole_manager"))
	mustOK(planner.Connect())
	mustOK(planner.StartScenario("north-expansion"))

	poleValues := func(x, y float64) []catalog.Value {
		v, err := sys.DB.ValuesFromMap(workload.SchemaName, "Pole", map[string]catalog.Value{
			"pole_type":     catalog.IntVal(1),
			"pole_supplier": catalog.RefVal(net.Suppliers[0]),
			"pole_location": catalog.GeomVal(geom.Pt(x, y)),
		})
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	// Two hypothetical poles inside the zone, one pole moved.
	planner.ScenarioInsert(workload.SchemaName, "Pole", poleValues(800, 900))
	planner.ScenarioInsert(workload.SchemaName, "Pole", poleValues(900, 950))
	mustOK(planner.ScenarioUpdate(net.Poles[0], poleValues(50, 50)))

	win, err := planner.OpenClassSimulated(workload.SchemaName, "Pole")
	mustOK(err)
	fmt.Printf("scenario window %q shows %d poles (database still has %d)\n",
		win.Name, len(win.Find("map").Shapes), sys.DB.Count(workload.SchemaName, "Pole"))

	// A hypothetical pole OUTSIDE the zone: the window shows it, but the
	// commit is vetoed by the topological rule — the hypothesis fails safely.
	bad, _ := planner.ScenarioInsert(workload.SchemaName, "Pole", poleValues(5000, 5000))
	if err := planner.CommitScenario(); err != nil {
		fmt.Printf("commit vetoed as expected: %v\n", err)
	}
	// Remove the offending pole and commit for real.
	mustOK(planner.ScenarioDelete(bad))
	mustOK(planner.CommitScenario())
	fmt.Printf("commit ok: database now has %d poles\n", sys.DB.Count(workload.SchemaName, "Pole"))

	// The observer's window went stale through the view-refresh rule.
	fmt.Printf("observer stale windows: %v\n", observer.Stale())
	n, err := observer.RefreshAll()
	mustOK(err)
	obsWin, _ := observer.Window("classset:Pole")
	fmt.Printf("observer refreshed %d window(s); map now shows %d poles\n",
		n, len(obsWin.Find("map").Shapes))
}

func mustOK(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
