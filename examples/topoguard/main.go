// Command topoguard demonstrates the companion use of the active mechanism
// the paper reports in §5: maintaining binary topological constraints on
// spatial updates ([11]). The same rule engine that customizes windows here
// vetoes inserts and updates that would violate topology, and certifies
// pre-existing data.
package main

import (
	"fmt"
	"log"

	gisui "repro"
	"repro/internal/catalog"
	"repro/internal/geom"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	sys := gisui.MustOpen(gisui.Config{})
	defer sys.Close()
	net, err := workload.BuildPhoneNet(sys.DB, workload.PhoneNetOptions{
		Seed: 9, ZonesPerSide: 2, PolesPerZone: 10})
	if err != nil {
		log.Fatal(err)
	}
	ctx := gisui.Context("op", "", "maintenance")

	// Constraint 1: every pole must lie inside some zone.
	inZone := topo.Constraint{
		Name: "pole-in-zone", Schema: workload.SchemaName,
		Class: "Pole", With: "Zone", Relation: geom.Inside, Mode: topo.Require,
	}
	// Constraint 2: no two zones may overlap.
	zonesDisjoint := topo.Constraint{
		Name: "zones-no-overlap", Schema: workload.SchemaName,
		Class: "Zone", With: "Zone", Relation: geom.Overlap, Mode: topo.Forbid,
	}
	for _, c := range []topo.Constraint{inZone, zonesDisjoint} {
		if err := sys.AddConstraint(c); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("installed constraint %q (%s %v %s, %s)\n",
			c.Name, c.Class, c.Relation, c.With, c.Mode)
	}

	// Certification of the generated data.
	for _, c := range []topo.Constraint{inZone, zonesDisjoint} {
		violations, err := sys.Certify(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("certify %q: %d violations\n", c.Name, len(violations))
	}

	// A legal insert inside zone-0-0.
	oid, err := sys.DB.InsertMap(ctx, workload.SchemaName, "Pole", map[string]catalog.Value{
		"pole_location": catalog.GeomVal(geom.Pt(500, 500)),
		"pole_supplier": catalog.RefVal(net.Suppliers[0]),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninsert pole at (500,500): OK (oid %d)\n", oid)

	// An insert outside every zone is vetoed by the rule engine.
	if _, err := sys.DB.InsertMap(ctx, workload.SchemaName, "Pole", map[string]catalog.Value{
		"pole_location": catalog.GeomVal(geom.Pt(-900, -900)),
	}); err != nil {
		fmt.Printf("insert pole at (-900,-900): vetoed — %v\n", err)
	}

	// Moving a pole out of its zone is vetoed; moving it within is fine.
	if err := sys.DB.UpdateAttr(ctx, oid, "pole_location",
		catalog.GeomVal(geom.Pt(-1, -1))); err != nil {
		fmt.Printf("move pole to (-1,-1):      vetoed — %v\n", err)
	}
	if err := sys.DB.UpdateAttr(ctx, oid, "pole_location",
		catalog.GeomVal(geom.Pt(250, 250))); err != nil {
		log.Fatal(err)
	}
	fmt.Println("move pole to (250,250):    OK")

	// An overlapping zone is vetoed.
	if _, err := sys.DB.InsertMap(ctx, workload.SchemaName, "Zone", map[string]catalog.Value{
		"zone_name": catalog.TextVal("rogue"),
		"region":    catalog.GeomVal(geom.R(500, 500, 1500, 1500).AsPolygon()),
	}); err != nil {
		fmt.Printf("insert overlapping zone:   vetoed — %v\n", err)
	}

	fmt.Printf("\nguard stats: %d checks, %d vetoes\n", sys.Guard.Checks, sys.Guard.Vetoes)
}
