// Command polemanager replays Section 4 of the paper end to end: the
// telephone-utility database with the Figure 5 Pole class, the Figure 6
// customization script compiled into active rules, and two sessions — a
// generic user seeing the Figure 4 default windows and the pole manager
// juliano seeing the Figure 7 customized windows.
package main

import (
	"fmt"
	"log"

	gisui "repro"
	"repro/internal/workload"
)

func main() {
	lib, err := workload.StandardLibrary()
	if err != nil {
		log.Fatal(err)
	}
	sys := gisui.MustOpen(gisui.Config{Name: "GEO", Library: lib})
	defer sys.Close()

	net, err := workload.BuildPhoneNet(sys.DB, workload.PhoneNetOptions{
		Seed: 1997, ZonesPerSide: 1, PolesPerZone: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d zones, %d poles, %d ducts, %d suppliers\n\n",
		workload.SchemaName, len(net.Zones), len(net.Poles), len(net.Ducts), len(net.Suppliers))

	// Install the Figure 6 customization. The script compiles into three
	// active rules (schema / class / instance presentation) conditioned on
	// the context <juliano, pole_manager>.
	units, err := sys.InstallDirectives(workload.Figure6Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled Figure 6 into rules:")
	for _, name := range units[0].RuleNames() {
		fmt.Println("  ", name)
	}

	// --- Default behaviour (Figure 4): a user with no matching rules. ---
	fmt.Println("\n================ maria (generic interface, Figure 4) ================")
	maria := sys.NewSession(gisui.Context("maria", "", "pole_manager"))
	mustOK(maria.Connect())
	_, err = maria.OpenSchema(workload.SchemaName)
	mustOK(err)
	mustOK(maria.Interact("schema:"+workload.SchemaName, "classes", "select", "Pole"))
	mustOK(maria.Interact("classset:Pole", "map", "pick", uint64(net.Poles[0])))
	fmt.Println(maria.Screen())

	// --- Customized behaviour (Figure 7): juliano the pole manager. ---
	fmt.Println("================ juliano (customized interface, Figure 7) ================")
	juliano := sys.NewSession(gisui.Context("juliano", "", "pole_manager"))
	// The using-clause callback of Figure 6 line (9).
	juliano.Registry().Register("composed_text.notify", func(w *gisui.Widget, payload any) error {
		fmt.Printf("  [callback composed_text.notify fired with value %q]\n", w.Prop("value"))
		return nil
	})
	mustOK(juliano.Connect())
	// Opening the schema fires R1: hidden Schema window + auto Get_Class(Pole).
	_, err = juliano.OpenSchema(workload.SchemaName)
	mustOK(err)
	mustOK(juliano.Interact("classset:Pole", "map", "pick", uint64(net.Poles[0])))
	fmt.Println(juliano.Screen())

	fmt.Println("=== explanation mode (why these windows?) ===")
	for _, line := range juliano.Explain() {
		fmt.Println("  ", line)
	}
}

func mustOK(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
