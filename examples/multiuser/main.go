// Command multiuser demonstrates the rule-priority model of §3.3 and live
// re-customization: three nested contexts (application-wide, a user
// category, one specific user) each get their own directive, the most
// specific matching rule wins per session, and a new directive installed at
// run time re-customizes the interface with no code change and no restart —
// the paper's headline "not hardwired, extensible, reusable, dynamic".
package main

import (
	"fmt"
	"log"

	gisui "repro"
	"repro/internal/workload"
)

const directives = `
# Everyone in the pole_manager application: hierarchical schema browsing.
For application pole_manager
schema phone_net display as hierarchy

# The planners category additionally customizes the Pole class window.
For category planners application pole_manager
schema phone_net display as hierarchy
class Pole display
  control as poleWidget
  presentation as pointFormat

# juliano, within planners, suppresses the schema window entirely.
For user juliano category planners application pole_manager
schema phone_net display as Null
class Pole display
  control as poleWidget
  presentation as pointFormat
`

func main() {
	lib, err := workload.StandardLibrary()
	if err != nil {
		log.Fatal(err)
	}
	sys := gisui.MustOpen(gisui.Config{Library: lib})
	defer sys.Close()
	if _, err := workload.BuildPhoneNet(sys.DB, workload.PhoneNetOptions{
		Seed: 3, ZonesPerSide: 1, PolesPerZone: 5}); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.InstallDirectives(directives); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %d rules\n\n", sys.Engine.RuleCount())

	show := func(label string, ctx gisui.Ctx) {
		s := sys.NewSession(ctx)
		if err := s.Connect(); err != nil {
			log.Fatal(err)
		}
		win, err := s.OpenSchema(workload.SchemaName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s (context %s) ---\n", label, ctx)
		fmt.Printf("schema window visible: %s\n", win.Prop("visible"))
		if list := win.Find("classes"); list != nil && win.Prop("visible") == "true" {
			fmt.Printf("schema display style: %q, classes: %v\n", list.Prop("style"), list.Items)
		}
		for _, name := range s.Windows() {
			w, _ := s.Window(name)
			kind := "default control"
			if w.Find("poleWidget") != nil {
				kind = "poleWidget control"
			}
			fmt.Printf("  window %-22s %s\n", name, kind)
		}
		fmt.Println()
	}

	// Three users, three nested specificity levels.
	show("intern (application rule only)",
		gisui.Context("intern7", "operators", "pole_manager"))
	show("paula (category rule wins)",
		gisui.Context("paula", "planners", "pole_manager"))
	show("juliano (user rule wins)",
		gisui.Context("juliano", "planners", "pole_manager"))

	// Live re-customization: give paula her own directive at run time.
	fmt.Println(">>> installing a run-time directive for paula (no rebuild, no restart)")
	if _, err := sys.InstallDirectives(`
For user paula category planners application pole_manager
schema phone_net display as default
`); err != nil {
		log.Fatal(err)
	}
	show("paula (after live re-customization)",
		gisui.Context("paula", "planners", "pole_manager"))
}
