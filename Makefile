# Tier-1 gate (see ROADMAP.md): formatting, vet, build, race-enabled tests.
# `make ci` is what must stay green on every PR.

GOFILES := $(shell find . -name '*.go' -not -path './.*')

.PHONY: ci fmt vet build test bench

ci: fmt vet build test

fmt:
	@out=$$(gofmt -l $(GOFILES)); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench:
	go test -run xxx -bench . -benchmem .
