# Tier-1 gate (see ROADMAP.md): formatting, vet, build, race-enabled tests.
# `make ci` is what must stay green on every PR.

GOFILES := $(shell find . -name '*.go' -not -path './.*')

.PHONY: ci fmt vet build test bench bench-smoke bench-json fuzz lint cover repl-smoke txn-smoke

ci: fmt vet build lint test cover bench-smoke fuzz repl-smoke txn-smoke

fmt:
	@out=$$(gofmt -l $(GOFILES)); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Static analysis beyond go vet (DESIGN.md §9, §14). repovet runs the full
# internal/vet suite (noprint, errdrop, lockheld, atomicmix, testleak) over
# the repository — zero unsuppressed findings allowed — archiving the JSON
# report under /tmp/gis-lint and printing per-check counts as
# gis_lint_findings_total{check} series. gislint checks the rule-set
# corpora: the Figure 6 workload and the clean/disjoint testdata files must
# lint clean, while the seeded ambiguous/shadowed/cycle/when-shadowed/dead
# files must keep failing (so the checks cannot silently rot).
lint:
	@mkdir -p /tmp/gis-lint
	go run ./cmd/repovet -out /tmp/gis-lint/vet.json -counts .
	go run ./cmd/gislint -figure6 cmd/gislint/testdata/clean.cust cmd/gislint/testdata/when_disjoint.cust
	@if go run ./cmd/gislint cmd/gislint/testdata/ambiguous.cust >/dev/null 2>&1; then \
		echo "gislint missed the seeded ambiguity"; exit 1; fi
	@if go run ./cmd/gislint cmd/gislint/testdata/shadowed.cust >/dev/null 2>&1; then \
		echo "gislint missed the seeded shadowed rule"; exit 1; fi
	@if go run ./cmd/gislint cmd/gislint/testdata/when_shadowed.cust >/dev/null 2>&1; then \
		echo "gislint missed the seeded condition-implied shadowing"; exit 1; fi
	@if go run ./cmd/gislint cmd/gislint/testdata/dead.rules.json >/dev/null 2>&1; then \
		echo "gislint missed the seeded dead rules"; exit 1; fi
	@if go run ./cmd/gislint cmd/gislint/testdata/cycle.rules.json >/dev/null 2>&1; then \
		echo "gislint missed the seeded triggering cycle"; exit 1; fi

# Short fuzz smoke over the torn-input decoders: the wire-protocol frame
# reader and the WAL record scanner. Deeper runs raise -fuzztime, e.g.
# `go test -fuzz=FuzzWALDecode -fuzztime=5m ./internal/storage`.
fuzz:
	go test -run='^$$' -fuzz=FuzzReadMessage -fuzztime=10s ./internal/proto
	go test -run='^$$' -fuzz=FuzzWALDecode -fuzztime=10s ./internal/storage

# Per-package coverage floor over the packages that guard data: storage
# (WAL, crash matrix), the database, the rule engine, the wire protocol —
# and the analysis suite that vets them (internal/vet).
COVER_FLOOR := 70
COVER_PKGS  := internal/storage internal/geodb internal/active internal/proto internal/obs internal/repl internal/vet

cover:
	@mkdir -p /tmp/gis-cover
	@fail=0; for pkg in $(COVER_PKGS); do \
		prof=/tmp/gis-cover/$$(basename $$pkg).out; \
		go test -count=1 -coverprofile=$$prof ./$$pkg >/dev/null || exit 1; \
		pct=$$(go tool cover -func=$$prof | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
		printf 'coverage %-20s %6s%% (floor $(COVER_FLOOR)%%)\n' $$pkg $$pct; \
		if ! awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN {exit !(p+0 >= f)}'; then \
			echo "coverage below floor for $$pkg"; fail=1; fi; \
	done; exit $$fail

bench:
	go test -run xxx -bench . -benchmem .

# One iteration of every benchmark: keeps the bench series compiling and
# running (not measuring) on every PR.
bench-smoke:
	go test -run xxx -bench . -benchtime 1x .

# Replication fault smoke (DESIGN.md §13): the ship stream under injected
# partitions/corruption, and the stalled-replica failover in the topology
# client. `make test` runs the full matrices; this re-runs just the fault
# paths so a CI log names them explicitly.
repl-smoke:
	go test -race -count=1 -run 'TestShipStreamFaultMatrix|TestHungPrimaryCannotWedgeApply' ./internal/repl
	go test -race -count=1 -run 'TestTopologyStalledReplicaPoisonedAndEvicted' ./internal/client

# Group-commit smoke (DESIGN.md §15): the concurrent-committer
# linearizability oracle + crash matrix and the transaction test package
# named explicitly in a CI log, then the PR-10 series on reduced sizes
# with its gates enforced — throughput monotonic in writer count 1/2/4/8
# and >=3x over the fsync-per-insert baseline at 8 writers (gisbench
# exits nonzero otherwise). The committed artifact is regenerated at
# full size by `make bench-json`.
txn-smoke:
	go test -race -count=1 -run 'TestWALGroupCommit|TestTxn' ./internal/storage ./internal/geodb
	go test -race -count=1 -run 'TestShipFramesNeverSplitTxn|TestReplicaPrefixConsistencyConcurrentWriters' ./internal/repl
	@mkdir -p /tmp/gis-bench
	go run ./cmd/gisbench -txn-json /tmp/gis-bench/BENCH_PR10.json -quick

# Machine-readable perf artifacts: the PR-4 concurrent hot paths (decision
# cache, pipelined client, sharded buffer pool; DESIGN.md §10), the PR-5
# durability series (WAL off vs synced vs group-committed; DESIGN.md §11),
# the PR-7 replication read scale-out series (DESIGN.md §13), and the PR-10
# group-commit transaction series (DESIGN.md §15).
bench-json:
	go run ./cmd/gisbench -json BENCH_PR4.json
	go run ./cmd/gisbench -wal-json BENCH_PR5.json
	go run ./cmd/gisbench -repl-json BENCH_PR7.json
	go run ./cmd/gisbench -txn-json BENCH_PR10.json
