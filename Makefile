# Tier-1 gate (see ROADMAP.md): formatting, vet, build, race-enabled tests.
# `make ci` is what must stay green on every PR.

GOFILES := $(shell find . -name '*.go' -not -path './.*')

.PHONY: ci fmt vet build test bench bench-smoke bench-json fuzz lint

ci: fmt vet build lint test bench-smoke fuzz

fmt:
	@out=$$(gofmt -l $(GOFILES)); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Static analysis beyond go vet: repovet keeps library packages from
# printing to stdout, and gislint checks the rule-set corpora — the Figure 6
# workload and the clean testdata file must lint clean, while the seeded
# ambiguous/shadowed/cycle files must keep failing (so the checks cannot
# silently rot).
lint:
	go run ./cmd/repovet .
	go run ./cmd/gislint -figure6 cmd/gislint/testdata/clean.cust
	@if go run ./cmd/gislint cmd/gislint/testdata/ambiguous.cust >/dev/null 2>&1; then \
		echo "gislint missed the seeded ambiguity"; exit 1; fi
	@if go run ./cmd/gislint cmd/gislint/testdata/shadowed.cust >/dev/null 2>&1; then \
		echo "gislint missed the seeded shadowed rule"; exit 1; fi
	@if go run ./cmd/gislint cmd/gislint/testdata/cycle.rules.json >/dev/null 2>&1; then \
		echo "gislint missed the seeded triggering cycle"; exit 1; fi

# Short fuzz smoke over the wire-protocol frame reader; deeper runs are
# `go test -fuzz=FuzzReadMessage -fuzztime=5m ./internal/proto`.
fuzz:
	go test -run='^$$' -fuzz=FuzzReadMessage -fuzztime=10s ./internal/proto

bench:
	go test -run xxx -bench . -benchmem .

# One iteration of every benchmark: keeps the bench series compiling and
# running (not measuring) on every PR.
bench-smoke:
	go test -run xxx -bench . -benchtime 1x .

# Machine-readable perf artifact for the concurrent hot paths: decision
# cache, pipelined client, sharded buffer pool (DESIGN.md §10).
bench-json:
	go run ./cmd/gisbench -json BENCH_PR4.json
