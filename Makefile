# Tier-1 gate (see ROADMAP.md): formatting, vet, build, race-enabled tests.
# `make ci` is what must stay green on every PR.

GOFILES := $(shell find . -name '*.go' -not -path './.*')

.PHONY: ci fmt vet build test bench fuzz

ci: fmt vet build test fuzz

fmt:
	@out=$$(gofmt -l $(GOFILES)); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Short fuzz smoke over the wire-protocol frame reader; deeper runs are
# `go test -fuzz=FuzzReadMessage -fuzztime=5m ./internal/proto`.
fuzz:
	go test -run='^$$' -fuzz=FuzzReadMessage -fuzztime=10s ./internal/proto

bench:
	go test -run xxx -bench . -benchmem .
