package gisui_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestExamplesSmoke compiles every example program and runs its main path to
// completion: each must exit 0 within the deadline. The examples are the
// documentation users actually run, so they break CI, not readers.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke builds binaries; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	binDir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			if runtime.GOOS == "windows" {
				bin += ".exe"
			}
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}

			cmd := exec.Command(bin)
			cmd.Dir = t.TempDir() // any files an example writes stay here
			done := make(chan error, 1)
			var out []byte
			go func() {
				var runErr error
				out, runErr = cmd.CombinedOutput()
				done <- runErr
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run failed: %v\n%s", err, out)
				}
				if len(out) == 0 {
					t.Fatal("example produced no output")
				}
			case <-time.After(60 * time.Second):
				if cmd.Process != nil {
					cmd.Process.Kill()
				}
				t.Fatal("example did not finish within 60s")
			}
		})
	}
}
