// Package gisui is the public API of this reproduction of "Active
// Customization of GIS User Interfaces" (Medeiros, Oliveira & Cilia, ICDE
// 1997): a GIS user-interface architecture whose customization lives inside
// the DBMS as active (ECA) rules over a persistent library of interface
// objects, compiled from a declarative customization language.
//
// A minimal application:
//
//	sys := gisui.MustOpen(gisui.Config{Name: "GEO"})
//	defer sys.Close()
//	// define schema + data on sys.DB, widgets on sys.Library ...
//	sys.InstallDirectives(directiveSource)
//	session := sys.NewSession(gisui.Context("juliano", "", "pole_manager"))
//	session.Connect()
//	session.OpenSchema("phone_net")
//	fmt.Println(session.Screen())
//
// The package is a thin facade over internal/core; see DESIGN.md for the
// module map and EXPERIMENTS.md for the paper-reproduction index.
package gisui

import (
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/geodb"
	"repro/internal/ui"
	"repro/internal/uikit"
)

// System is the assembled architecture: database, active engine, interface
// objects library, generic interface builder, constraint guard.
type System = core.System

// Config sizes and locates a System.
type Config = core.Config

// Session is a user's UI session (dispatcher + window hierarchy).
type Session = ui.Session

// Library is the interface objects library.
type Library = uikit.Library

// Widget is an interface object instance.
type Widget = uikit.Widget

// Ctx is an interaction context <user, category, application>.
type Ctx = event.Context

// Txn is an explicit transaction (System.Begin): buffered mutations commit
// atomically under one WAL group and one shared group-commit fsync.
type Txn = geodb.Txn

// Open assembles a system from the configuration.
func Open(cfg Config) (*System, error) { return core.Open(cfg) }

// MustOpen is Open, panicking on error (examples and tests).
func MustOpen(cfg Config) *System { return core.MustOpen(cfg) }

// Context builds an interaction context.
func Context(user, category, application string) Ctx {
	return core.Context(user, category, application)
}

// Kernel returns a library holding the paper's Figure 2 kernel classes.
func Kernel() *Library { return uikit.Kernel() }

// ClientOptions configures the weak-integration client transport (timeout,
// retry policy, reconnect dialing).
type ClientOptions = core.ClientOptions

// RetryPolicy bounds retries of idempotent retrieval verbs: exponential
// backoff with jitter, never applied to method calls.
type RetryPolicy = core.RetryPolicy

// RemoteSession dials a weak-integration server and opens a session over it.
var RemoteSession = core.RemoteSession

// RemoteSessionOptions is RemoteSession with a fault-tolerant transport:
// per-request timeouts, retry with backoff, automatic reconnect.
var RemoteSessionOptions = core.RemoteSessionOptions
