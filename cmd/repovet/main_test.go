package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ruleanalysis"
)

func write(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// printRoot builds a tree with exactly one noprint finding and a clean
// cmd/ package.
func printRoot(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write(t, root, "internal/a/a.go", `package a

import "fmt"

func A() { fmt.Println("hi") }
`)
	write(t, root, "cmd/tool/main.go", `package main

import "fmt"

func main() { fmt.Println("allowed") }
`)
	return root
}

func TestRunTextAndExitCode(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{printRoot(t)}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "a.go:5:12: error: noprint: fmt.Println") {
		t.Errorf("output = %s", got)
	}
	if strings.Contains(got, "cmd/tool") {
		t.Errorf("cmd/ exemption lost: %s", got)
	}
}

func TestRunChecksFilter(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-checks", "errdrop,lockheld", printRoot(t)}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, out: %s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings: %s", out.String())
	}
}

func TestRunJSONAndArchive(t *testing.T) {
	archive := filepath.Join(t.TempDir(), "vet.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-out", archive, printRoot(t)}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	var fs []ruleanalysis.Finding
	if err := json.Unmarshal(out.Bytes(), &fs); err != nil {
		t.Fatalf("stdout JSON: %v", err)
	}
	if len(fs) != 1 || fs[0].Check != "noprint" {
		t.Fatalf("findings = %+v", fs)
	}
	data, err := os.ReadFile(archive)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, out.Bytes()) {
		t.Error("archived JSON differs from stdout JSON")
	}
}

func TestRunCounts(t *testing.T) {
	var out, errOut bytes.Buffer
	run([]string{"-counts", printRoot(t)}, &out, &errOut)
	if !strings.Contains(out.String(), `gis_lint_findings_total{check="noprint"} 1`) {
		t.Errorf("counts missing:\n%s", out.String())
	}
}

func TestRunFailOn(t *testing.T) {
	root := t.TempDir()
	// A lone testleak warning: fails at the default threshold, passes at
	// -fail-on error.
	write(t, root, "internal/a/a_test.go", `package a

import (
	"testing"
	"time"
)

func TestSleepy(t *testing.T) { time.Sleep(time.Millisecond) }
`)
	var out, errOut bytes.Buffer
	if code := run([]string{root}, &out, &errOut); code != 1 {
		t.Fatalf("default fail-on: exit = %d, out: %s", code, out.String())
	}
	if code := run([]string{"-fail-on", "error", root}, &out, &errOut); code != 0 {
		t.Fatalf("fail-on error: exit = %d", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuch"},
		{"a", "b"},
		{"-fail-on", "fatal", "."},
		{"-checks", "nosuch", "."},
		{filepath.Join(t.TempDir(), "missing")},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestRepoClean is the dogfood gate: the repository itself must pass its
// own analysis suite with zero unsuppressed findings.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"../.."}, &out, &errOut); code != 0 {
		t.Fatalf("repo is not vet-clean (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}
