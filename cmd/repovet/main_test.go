package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVetTree(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/a/a.go", `package a

import "fmt"

func A() { fmt.Println("hi") }
`)
	write(t, root, "internal/b/b.go", `package b

import out "fmt"

func B() { out.Printf("x %d", 1) }
`)
	write(t, root, "internal/c/c.go", `package c

import "fmt"

func C() error { return fmt.Errorf("fine") }
`)
	write(t, root, "cmd/tool/main.go", `package main

import "fmt"

func main() { fmt.Println("allowed") }
`)
	write(t, root, "examples/demo/main.go", `package main

import "fmt"

func main() { fmt.Print("allowed") }
`)
	write(t, root, "internal/a/a_test.go", `package a

import "fmt"

func helper() { fmt.Println("tests may print") }
`)
	write(t, root, "internal/skip/testdata/x.go", `package ignored

import "fmt"

func X() { fmt.Println("testdata is skipped") }
`)

	findings, err := vetTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v", findings)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"a.go:5:12: fmt.Println",
		"b.go:5:12: out.Printf",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings lack %q:\n%s", want, joined)
		}
	}
}

func TestVetTreeBansLog(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/a/a.go", `package a

import "log"

func A() { log.Printf("x %d", 1) }

func B() { log.Fatal("boom") }
`)
	write(t, root, "internal/b/b.go", `package b

import stdlog "log"

func C() { stdlog.Panicln("boom") }
`)
	write(t, root, "internal/c/c.go", `package c

import "log"

func D() *log.Logger { return log.New(nil, "", 0) }
`)
	write(t, root, "cmd/tool/main.go", `package main

import "log"

func main() { log.Println("allowed") }
`)

	findings, err := vetTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %v", findings)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"a.go:5:12: log.Printf",
		"a.go:7:12: log.Fatal",
		"b.go:5:12: stdlog.Panicln",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings lack %q:\n%s", want, joined)
		}
	}
}

func TestVetTreeCleanRepo(t *testing.T) {
	// The repository itself must stay clean: repovet over the repo root
	// (two levels up from this package) finds nothing.
	findings, err := vetTree("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("repo is not print-clean:\n%s", strings.Join(findings, "\n"))
	}
}

func TestDotImportReported(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/d/d.go", `package d

import . "fmt"

func D() { Println("hidden") }
`)
	findings, err := vetTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "dot-import") {
		t.Fatalf("findings = %v", findings)
	}
}
