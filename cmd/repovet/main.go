// Command repovet runs the project's static analysis suite (internal/vet)
// over a source tree: the concurrency and hygiene invariants go vet does
// not check — locks held across blocking calls (lockheld), mixed
// atomic/plain access (atomicmix), dropped durability errors (errdrop),
// leaky test goroutines (testleak), and the original library-must-not-
// print rule (noprint).
//
// Usage:
//
//	repovet [-json] [-out file] [-counts] [-checks list] [-fail-on sev] [root]
//
// Walks the tree rooted at root (default ".") and reports every finding as
// file:line:col: severity: check: message. Exit status 1 when any finding
// at or above -fail-on (default warning) survives suppression, 2 on usage
// or load errors. Intentional findings are waved off in source with
// //vet:ignore <check> -- <reason>.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ruleanalysis"
	"repro/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	outFile := fs.String("out", "", "also write JSON findings to this file")
	counts := fs.Bool("counts", false, "print per-check totals (gis_lint_findings_total form)")
	checks := fs.String("checks", "", "comma-separated checks to run (default all)")
	failOn := fs.String("fail-on", "warning", "exit non-zero at this severity or above (info, warning, error)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: repovet [-json] [-out file] [-counts] [-checks list] [-fail-on sev] [root]")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "checks:")
		for _, a := range vet.All() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}
	root := "."
	if fs.NArg() == 1 {
		root = fs.Arg(0)
	}
	threshold, ok := ruleanalysis.ParseSeverity(*failOn)
	if !ok {
		fmt.Fprintf(stderr, "repovet: unknown severity %q\n", *failOn)
		return 2
	}
	analyzers, err := vet.Select(vet.All(), *checks)
	if err != nil {
		fmt.Fprintln(stderr, "repovet:", err)
		return 2
	}
	findings, err := vet.Run(root, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "repovet:", err)
		return 2
	}
	ruleanalysis.ObserveFindings(findings)
	if *jsonOut {
		if err := ruleanalysis.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "repovet:", err)
			return 2
		}
	} else if err := vet.WriteText(stdout, findings); err != nil {
		fmt.Fprintln(stderr, "repovet:", err)
		return 2
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(stderr, "repovet:", err)
			return 2
		}
		werr := ruleanalysis.WriteJSON(f, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "repovet:", werr)
			return 2
		}
	}
	if *counts {
		if err := vet.WriteCounts(stdout, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "repovet:", err)
			return 2
		}
	}
	if worst, any := vet.MaxSeverity(findings); any && worst >= threshold {
		return 1
	}
	return 0
}
