// Command repovet enforces repo-local hygiene rules that go vet does not:
// library packages must not print to stdout/stderr via fmt.Print* or the
// standard log package (log.Print*/Fatal*/Panic*) — output belongs to the
// cmd/ front-ends (and examples/), while libraries report through errors,
// traces, metrics and the structured obs.Logger.
//
// Usage:
//
//	repovet [root]
//
// Walks the tree rooted at root (default ".") and reports every offending
// call as file:line:col. Exit status 1 when anything is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := vetTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repovet:", err)
		os.Exit(1)
	}
	report(os.Stdout, findings)
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func report(w io.Writer, findings []string) {
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
}

// allowed reports whether the file may print: command front-ends and
// examples own the terminal; everything else does not.
func allowed(rel string) bool {
	rel = filepath.ToSlash(rel)
	return strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/")
}

// vetTree scans every non-test Go file under root and returns one
// "file:line:col: message" string per fmt.Print/Printf/Println or
// log.Print*/Fatal*/Panic* call in a package that must not print.
func vetTree(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if allowed(rel) {
			return nil
		}
		fs, err := vetFile(rel, path)
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	return findings, err
}

// banned maps a banned package import path to the set of call names that
// write to the terminal (or kill the process) from library code.
var banned = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

// vetFile parses one file and finds banned fmt/log calls, tracking the
// local name each package is imported under (including aliases; dot imports
// are reported as findings themselves since they defeat the check).
func vetFile(rel, path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	// localName maps the in-file identifier to the banned package it names.
	localName := map[string]string{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || banned[p] == nil {
			continue
		}
		switch {
		case imp.Name == nil:
			localName[p] = p
		case imp.Name.Name == ".":
			pos := fset.Position(imp.Pos())
			return []string{fmt.Sprintf("%s:%d:%d: dot-import of %s defeats the print check",
				rel, pos.Line, pos.Column, p)}, nil
		case imp.Name.Name == "_":
		default:
			localName[imp.Name.Name] = p
		}
	}
	if len(localName) == 0 {
		return nil, nil
	}
	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path, ok := localName[pkg.Name]
		if !ok || !banned[path][sel.Sel.Name] {
			return true
		}
		pos := fset.Position(call.Pos())
		findings = append(findings, fmt.Sprintf(
			"%s:%d:%d: %s.%s writes to the terminal from a library package; return an error or use obs instead",
			rel, pos.Line, pos.Column, pkg.Name, sel.Sel.Name))
		return true
	})
	return findings, nil
}
