// Command gisbrowse is an interactive exploratory browser over a generated
// telephone-network database — the paper's GIS interface driven from a
// terminal. It supports both strong integration (default) and weak
// integration against a gisd server (-connect).
//
// Commands at the prompt:
//
//	schema                  open the Schema window
//	class <name>            open a Class set window
//	pick <oid>              open an Instance window
//	analyze <class> <attr> <op> <value>   analysis-mode filtered window
//	screen                  render all windows
//	svg <window>            render a window's map as SVG
//	windows                 list open windows
//	close <window>          close a window (cascades)
//	explain                 explanation mode: why these windows
//	scenario <subcmd> ...   simulation mode (start/pole/move/delete/window/commit/drop)
//	stale / refresh         view-refresh: list and rebuild out-of-date windows
//	stats                   per-verb latency quantiles (server's in -connect mode)
//	repl                    replication status: role, log positions, replica lag
//	trace [id]              list the server's retained traces, or print one span tree
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	gisui "repro"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/geodb"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/workload"
)

func main() {
	var (
		user       = flag.String("user", "maria", "user name for the interaction context")
		category   = flag.String("category", "", "user category")
		app        = flag.String("app", "pole_manager", "application domain")
		poles      = flag.Int("poles", 12, "poles per zone in the generated network")
		zones      = flag.Int("zones", 1, "zones per side")
		seed       = flag.Int64("seed", 1997, "generator seed")
		directives = flag.String("directives", "", "customization directive file to install ('figure6' for the paper's script)")
		connect    = flag.String("connect", "", "connect to a gisd server address instead of embedding the DBMS")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request deadline in -connect mode (0 = none)")
		retries    = flag.Int("retries", 4, "retry attempts for retrieval requests in -connect mode (1 = no retry)")
		script     = flag.Bool("script", false, "read commands from stdin without a prompt (non-interactive)")
	)
	flag.Parse()

	lib, err := workload.StandardLibrary()
	if err != nil {
		fatal(err)
	}
	ctx := gisui.Context(*user, *category, *app)

	var session *gisui.Session
	var remote *client.Client // non-nil in -connect mode: stats/trace verbs
	if *connect != "" {
		// Fault-tolerant transport: retrieval requests are retried with
		// backoff and the connection is re-dialed, so an exploratory session
		// survives a gisd restart without user-visible errors.
		s, cli, err := gisui.RemoteSessionOptions(*connect, lib, ctx, gisui.ClientOptions{
			Timeout: *timeout,
			Retry:   gisui.RetryPolicy{MaxAttempts: *retries},
		})
		if err != nil {
			fatal(err)
		}
		defer cli.Close()
		session = s
		remote = cli
		fmt.Printf("connected to %s as %s\n", *connect, ctx)
	} else {
		sys := gisui.MustOpen(gisui.Config{Name: "GEO", Library: lib})
		defer sys.Close()
		net, err := workload.BuildPhoneNet(sys.DB, workload.PhoneNetOptions{
			Seed: *seed, ZonesPerSide: *zones, PolesPerZone: *poles})
		if err != nil {
			fatal(err)
		}
		if *directives != "" {
			src := workload.Figure6Source
			if *directives != "figure6" {
				data, err := os.ReadFile(*directives)
				if err != nil {
					fatal(err)
				}
				src = string(data)
			}
			if _, err := sys.InstallDirectives(src); err != nil {
				fatal(err)
			}
			fmt.Printf("installed %d customization rules\n", sys.Engine.RuleCount())
		}
		fmt.Printf("embedded database: %d poles, %d ducts, %d zones (context %s)\n",
			len(net.Poles), len(net.Ducts), len(net.Zones), ctx)
		session = sys.NewSession(ctx)
	}
	if err := session.Connect(); err != nil {
		fatal(err)
	}

	in := bufio.NewScanner(os.Stdin)
	for {
		if !*script {
			fmt.Print("gis> ")
		}
		if !in.Scan() {
			return
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		if err := dispatch(session, remote, fields); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func dispatch(s *gisui.Session, remote *client.Client, fields []string) error {
	switch fields[0] {
	case "schema":
		_, err := s.OpenSchema(workload.SchemaName)
		return err
	case "class":
		if len(fields) != 2 {
			return fmt.Errorf("usage: class <name>")
		}
		_, err := s.OpenClass(workload.SchemaName, fields[1])
		return err
	case "pick":
		if len(fields) != 2 {
			return fmt.Errorf("usage: pick <oid>")
		}
		oid, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		_, err = s.OpenInstance(catalog.OID(oid))
		return err
	case "analyze":
		if len(fields) != 5 {
			return fmt.Errorf("usage: analyze <class> <attr> <op> <value>")
		}
		value := parseValue(fields[4])
		_, err := s.Analyze(workload.SchemaName, fields[1], []geodb.Filter{
			{Attr: fields[2], Op: fields[3], Value: value}})
		return err
	case "screen":
		fmt.Print(s.Screen())
		return nil
	case "svg":
		if len(fields) != 2 {
			return fmt.Errorf("usage: svg <window>")
		}
		win, err := s.Window(fields[1])
		if err != nil {
			return err
		}
		area := win.Find("map")
		if area == nil {
			return fmt.Errorf("window %q has no map", fields[1])
		}
		fmt.Print(render.SVG(area, render.SVGOptions{Width: 640, Height: 480, Labels: true}))
		return nil
	case "windows":
		for _, name := range s.Windows() {
			fmt.Println(" ", name)
		}
		return nil
	case "close":
		if len(fields) != 2 {
			return fmt.Errorf("usage: close <window>")
		}
		return s.CloseWindow(fields[1])
	case "explain":
		for _, line := range s.Explain() {
			fmt.Println(" ", line)
		}
		return nil
	case "scenario":
		return scenarioCmd(s, fields[1:])
	case "stale":
		for _, name := range s.Stale() {
			fmt.Println(" ", name)
		}
		return nil
	case "refresh":
		n, err := s.RefreshAll()
		if err != nil {
			return err
		}
		fmt.Printf("refreshed %d window(s)\n", n)
		return nil
	case "stats":
		return statsCmd(remote)
	case "repl":
		return replCmd(remote)
	case "trace":
		return traceCmd(remote, fields[1:])
	case "quit", "exit":
		return errQuit
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}

// statsCmd prints per-verb latency quantiles derived from the latency
// histograms' bucket counts — the server's registry over the stats verb in
// -connect mode, the local process registry when embedded.
func statsCmd(remote *client.Client) error {
	var snap obs.Snapshot
	if remote != nil {
		var err error
		snap, err = remote.Stats()
		if err != nil {
			return err
		}
	} else {
		snap = obs.Default().Snapshot()
	}
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("  %-52s %8s %9s %9s %9s\n", "histogram", "count", "p50", "p95", "p99")
	for _, name := range names {
		h := snap.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Printf("  %-52s %8d %8.2fms %8.2fms %8.2fms\n", name, h.Count,
			h.Quantile(0.50)*1e3, h.Quantile(0.95)*1e3, h.Quantile(0.99)*1e3)
	}
	return nil
}

// replCmd prints the connected server's replication status: its role,
// log positions and — on a primary — every attached replica with its lag.
func replCmd(remote *client.Client) error {
	if remote == nil {
		return fmt.Errorf("repl requires -connect (the embedded browser does not replicate)")
	}
	st, err := remote.ReplStatus()
	if err != nil {
		return err
	}
	switch st.Role {
	case "primary":
		fmt.Printf("  role primary  run %d  durable lsn %d  replicas %d\n",
			st.RunID, st.Durable, len(st.Replicas))
		for _, r := range st.Replicas {
			fmt.Printf("    %-24s acked %8d  lag %6d\n", r.Addr, r.Acked, r.Lag)
		}
	case "replica":
		health := "healthy"
		if !st.Healthy {
			health = "UNAVAILABLE"
		}
		conn := "connected"
		if !st.Connected {
			conn = "DISCONNECTED"
		}
		fmt.Printf("  role replica  run %d  applied lsn %d  primary durable %d  lag %d  %s, %s\n",
			st.RunID, st.Applied, st.PrimaryDurable, st.Lag, health, conn)
	default:
		fmt.Printf("  role %s\n", st.Role)
	}
	return nil
}

// traceCmd lists the server's retained traces, or prints one trace's span
// tree when given a hex trace ID.
func traceCmd(remote *client.Client, args []string) error {
	if remote == nil {
		return fmt.Errorf("trace requires -connect (the embedded browser keeps no tail sampler)")
	}
	if len(args) == 0 {
		traces, err := remote.Traces()
		if err != nil {
			return err
		}
		if len(traces) == 0 {
			fmt.Println("  no traces retained yet")
			return nil
		}
		fmt.Printf("  %-16s %-8s %10s %6s  %s\n", "trace", "reason", "duration", "spans", "root")
		for _, td := range traces {
			root := ""
			for _, sp := range td.Spans {
				if sp.ID == td.Root {
					root = sp.Name
					break
				}
			}
			fmt.Printf("  %-16s %-8s %10s %6d  %s\n",
				obs.IDString(td.TraceID), td.Reason, td.Duration.Round(time.Microsecond),
				len(td.Spans), root)
		}
		return nil
	}
	id, err := obs.ParseID(args[0])
	if err != nil {
		return err
	}
	td, err := remote.Trace(id)
	if err != nil {
		return err
	}
	fmt.Printf("  trace %s (%s, %s, %d spans)\n",
		obs.IDString(td.TraceID), td.Reason, td.Duration.Round(time.Microsecond), len(td.Spans))
	printSpanTree(td.Spans)
	return nil
}

// printSpanTree renders spans as an indented tree. Spans whose parent is
// missing (e.g. the client half of a cross-process trace when only the
// server retained it) print as additional roots.
func printSpanTree(spans []obs.Span) {
	children := make(map[uint64][]int, len(spans))
	have := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		have[sp.ID] = true
	}
	var roots []int
	for i, sp := range spans {
		if sp.Parent != 0 && have[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return spans[idx[a]].Start.Before(spans[idx[b]].Start) })
	}
	byStart(roots)
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := spans[i]
		line := fmt.Sprintf("  %s%s %s", strings.Repeat("  ", depth), sp.Name,
			sp.End.Sub(sp.Start).Round(time.Microsecond))
		for _, a := range sp.Attrs {
			line += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		if sp.Error != "" {
			line += " error=" + sp.Error
		}
		fmt.Println(line)
		kids := children[sp.ID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// scenarioCmd handles the simulation-mode subcommands:
//
//	scenario start <name>
//	scenario pole <x> <y>      hypothetically place a pole
//	scenario move <oid> <x> <y>
//	scenario delete <oid>
//	scenario window <class>    open the merged class window
//	scenario commit | drop
func scenarioCmd(s *gisui.Session, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: scenario start|pole|move|delete|window|commit|drop ...")
	}
	switch args[0] {
	case "start":
		if len(args) != 2 {
			return fmt.Errorf("usage: scenario start <name>")
		}
		return s.StartScenario(args[1])
	case "pole":
		if len(args) != 3 {
			return fmt.Errorf("usage: scenario pole <x> <y>")
		}
		values, err := poleAt(args[1], args[2])
		if err != nil {
			return err
		}
		oid, err := s.ScenarioInsert(workload.SchemaName, "Pole", values)
		if err != nil {
			return err
		}
		fmt.Printf("hypothetical pole %d\n", oid)
		return nil
	case "move":
		if len(args) != 4 {
			return fmt.Errorf("usage: scenario move <oid> <x> <y>")
		}
		oid, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		values, err := poleAt(args[2], args[3])
		if err != nil {
			return err
		}
		return s.ScenarioUpdate(catalog.OID(oid), values)
	case "delete":
		if len(args) != 2 {
			return fmt.Errorf("usage: scenario delete <oid>")
		}
		oid, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		return s.ScenarioDelete(catalog.OID(oid))
	case "window":
		if len(args) != 2 {
			return fmt.Errorf("usage: scenario window <class>")
		}
		win, err := s.OpenClassSimulated(workload.SchemaName, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("opened %s with %d shapes\n", win.Name, len(win.Find("map").Shapes))
		return nil
	case "commit":
		if err := s.CommitScenario(); err != nil {
			return err
		}
		fmt.Println("scenario committed")
		return nil
	case "drop":
		return s.DropScenario()
	default:
		return fmt.Errorf("unknown scenario command %q", args[0])
	}
}

// poleAt builds Pole values with only a location (other attributes null),
// using the schema-ordered layout the scenario API expects.
func poleAt(xs, ys string) ([]catalog.Value, error) {
	x, err := strconv.ParseFloat(xs, 64)
	if err != nil {
		return nil, err
	}
	y, err := strconv.ParseFloat(ys, 64)
	if err != nil {
		return nil, err
	}
	// Effective attr order of the workload Pole class: pole_type,
	// pole_composition, pole_supplier, pole_location, pole_picture,
	// pole_historic.
	return []catalog.Value{
		catalog.Null, catalog.Null, catalog.Null,
		catalog.GeomVal(geom.Pt(x, y)),
		catalog.Null, catalog.Null,
	}, nil
}

// parseValue guesses the literal type: integer, float, then text.
func parseValue(s string) catalog.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return catalog.IntVal(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return catalog.FloatVal(f)
	}
	return catalog.TextVal(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gisbrowse:", err)
	os.Exit(1)
}
