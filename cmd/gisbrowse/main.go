// Command gisbrowse is an interactive exploratory browser over a generated
// telephone-network database — the paper's GIS interface driven from a
// terminal. It supports both strong integration (default) and weak
// integration against a gisd server (-connect).
//
// Commands at the prompt:
//
//	schema                  open the Schema window
//	class <name>            open a Class set window
//	pick <oid>              open an Instance window
//	analyze <class> <attr> <op> <value>   analysis-mode filtered window
//	screen                  render all windows
//	svg <window>            render a window's map as SVG
//	windows                 list open windows
//	close <window>          close a window (cascades)
//	explain                 explanation mode: why these windows
//	scenario <subcmd> ...   simulation mode (start/pole/move/delete/window/commit/drop)
//	stale / refresh         view-refresh: list and rebuild out-of-date windows
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	gisui "repro"
	"repro/internal/catalog"
	"repro/internal/geodb"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/workload"
)

func main() {
	var (
		user       = flag.String("user", "maria", "user name for the interaction context")
		category   = flag.String("category", "", "user category")
		app        = flag.String("app", "pole_manager", "application domain")
		poles      = flag.Int("poles", 12, "poles per zone in the generated network")
		zones      = flag.Int("zones", 1, "zones per side")
		seed       = flag.Int64("seed", 1997, "generator seed")
		directives = flag.String("directives", "", "customization directive file to install ('figure6' for the paper's script)")
		connect    = flag.String("connect", "", "connect to a gisd server address instead of embedding the DBMS")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request deadline in -connect mode (0 = none)")
		retries    = flag.Int("retries", 4, "retry attempts for retrieval requests in -connect mode (1 = no retry)")
		script     = flag.Bool("script", false, "read commands from stdin without a prompt (non-interactive)")
	)
	flag.Parse()

	lib, err := workload.StandardLibrary()
	if err != nil {
		fatal(err)
	}
	ctx := gisui.Context(*user, *category, *app)

	var session *gisui.Session
	if *connect != "" {
		// Fault-tolerant transport: retrieval requests are retried with
		// backoff and the connection is re-dialed, so an exploratory session
		// survives a gisd restart without user-visible errors.
		s, cli, err := gisui.RemoteSessionOptions(*connect, lib, ctx, gisui.ClientOptions{
			Timeout: *timeout,
			Retry:   gisui.RetryPolicy{MaxAttempts: *retries},
		})
		if err != nil {
			fatal(err)
		}
		defer cli.Close()
		session = s
		fmt.Printf("connected to %s as %s\n", *connect, ctx)
	} else {
		sys := gisui.MustOpen(gisui.Config{Name: "GEO", Library: lib})
		defer sys.Close()
		net, err := workload.BuildPhoneNet(sys.DB, workload.PhoneNetOptions{
			Seed: *seed, ZonesPerSide: *zones, PolesPerZone: *poles})
		if err != nil {
			fatal(err)
		}
		if *directives != "" {
			src := workload.Figure6Source
			if *directives != "figure6" {
				data, err := os.ReadFile(*directives)
				if err != nil {
					fatal(err)
				}
				src = string(data)
			}
			if _, err := sys.InstallDirectives(src); err != nil {
				fatal(err)
			}
			fmt.Printf("installed %d customization rules\n", sys.Engine.RuleCount())
		}
		fmt.Printf("embedded database: %d poles, %d ducts, %d zones (context %s)\n",
			len(net.Poles), len(net.Ducts), len(net.Zones), ctx)
		session = sys.NewSession(ctx)
	}
	if err := session.Connect(); err != nil {
		fatal(err)
	}

	in := bufio.NewScanner(os.Stdin)
	for {
		if !*script {
			fmt.Print("gis> ")
		}
		if !in.Scan() {
			return
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		if err := dispatch(session, fields); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func dispatch(s *gisui.Session, fields []string) error {
	switch fields[0] {
	case "schema":
		_, err := s.OpenSchema(workload.SchemaName)
		return err
	case "class":
		if len(fields) != 2 {
			return fmt.Errorf("usage: class <name>")
		}
		_, err := s.OpenClass(workload.SchemaName, fields[1])
		return err
	case "pick":
		if len(fields) != 2 {
			return fmt.Errorf("usage: pick <oid>")
		}
		oid, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		_, err = s.OpenInstance(catalog.OID(oid))
		return err
	case "analyze":
		if len(fields) != 5 {
			return fmt.Errorf("usage: analyze <class> <attr> <op> <value>")
		}
		value := parseValue(fields[4])
		_, err := s.Analyze(workload.SchemaName, fields[1], []geodb.Filter{
			{Attr: fields[2], Op: fields[3], Value: value}})
		return err
	case "screen":
		fmt.Print(s.Screen())
		return nil
	case "svg":
		if len(fields) != 2 {
			return fmt.Errorf("usage: svg <window>")
		}
		win, err := s.Window(fields[1])
		if err != nil {
			return err
		}
		area := win.Find("map")
		if area == nil {
			return fmt.Errorf("window %q has no map", fields[1])
		}
		fmt.Print(render.SVG(area, render.SVGOptions{Width: 640, Height: 480, Labels: true}))
		return nil
	case "windows":
		for _, name := range s.Windows() {
			fmt.Println(" ", name)
		}
		return nil
	case "close":
		if len(fields) != 2 {
			return fmt.Errorf("usage: close <window>")
		}
		return s.CloseWindow(fields[1])
	case "explain":
		for _, line := range s.Explain() {
			fmt.Println(" ", line)
		}
		return nil
	case "scenario":
		return scenarioCmd(s, fields[1:])
	case "stale":
		for _, name := range s.Stale() {
			fmt.Println(" ", name)
		}
		return nil
	case "refresh":
		n, err := s.RefreshAll()
		if err != nil {
			return err
		}
		fmt.Printf("refreshed %d window(s)\n", n)
		return nil
	case "quit", "exit":
		return errQuit
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}

// scenarioCmd handles the simulation-mode subcommands:
//
//	scenario start <name>
//	scenario pole <x> <y>      hypothetically place a pole
//	scenario move <oid> <x> <y>
//	scenario delete <oid>
//	scenario window <class>    open the merged class window
//	scenario commit | drop
func scenarioCmd(s *gisui.Session, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: scenario start|pole|move|delete|window|commit|drop ...")
	}
	switch args[0] {
	case "start":
		if len(args) != 2 {
			return fmt.Errorf("usage: scenario start <name>")
		}
		return s.StartScenario(args[1])
	case "pole":
		if len(args) != 3 {
			return fmt.Errorf("usage: scenario pole <x> <y>")
		}
		values, err := poleAt(args[1], args[2])
		if err != nil {
			return err
		}
		oid, err := s.ScenarioInsert(workload.SchemaName, "Pole", values)
		if err != nil {
			return err
		}
		fmt.Printf("hypothetical pole %d\n", oid)
		return nil
	case "move":
		if len(args) != 4 {
			return fmt.Errorf("usage: scenario move <oid> <x> <y>")
		}
		oid, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		values, err := poleAt(args[2], args[3])
		if err != nil {
			return err
		}
		return s.ScenarioUpdate(catalog.OID(oid), values)
	case "delete":
		if len(args) != 2 {
			return fmt.Errorf("usage: scenario delete <oid>")
		}
		oid, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		return s.ScenarioDelete(catalog.OID(oid))
	case "window":
		if len(args) != 2 {
			return fmt.Errorf("usage: scenario window <class>")
		}
		win, err := s.OpenClassSimulated(workload.SchemaName, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("opened %s with %d shapes\n", win.Name, len(win.Find("map").Shapes))
		return nil
	case "commit":
		if err := s.CommitScenario(); err != nil {
			return err
		}
		fmt.Println("scenario committed")
		return nil
	case "drop":
		return s.DropScenario()
	default:
		return fmt.Errorf("unknown scenario command %q", args[0])
	}
}

// poleAt builds Pole values with only a location (other attributes null),
// using the schema-ordered layout the scenario API expects.
func poleAt(xs, ys string) ([]catalog.Value, error) {
	x, err := strconv.ParseFloat(xs, 64)
	if err != nil {
		return nil, err
	}
	y, err := strconv.ParseFloat(ys, 64)
	if err != nil {
		return nil, err
	}
	// Effective attr order of the workload Pole class: pole_type,
	// pole_composition, pole_supplier, pole_location, pole_picture,
	// pole_historic.
	return []catalog.Value{
		catalog.Null, catalog.Null, catalog.Null,
		catalog.GeomVal(geom.Pt(x, y)),
		catalog.Null, catalog.Null,
	}, nil
}

// parseValue guesses the literal type: integer, float, then text.
func parseValue(s string) catalog.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return catalog.IntVal(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return catalog.FloatVal(f)
	}
	return catalog.TextVal(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gisbrowse:", err)
	os.Exit(1)
}
