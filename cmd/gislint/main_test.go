package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runLint runs the CLI in-process and returns its stdout and exit code.
func runLint(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	if stderr.Len() > 0 {
		t.Logf("stderr:\n%s", stderr.String())
	}
	return stdout.String(), code
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGolden(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		golden   string
		wantCode int
	}{
		{"clean", []string{"testdata/clean.cust"}, "clean.golden", 0},
		{"ambiguous", []string{"testdata/ambiguous.cust"}, "ambiguous.golden", 1},
		{"shadowed", []string{"testdata/shadowed.cust"}, "shadowed.golden", 1},
		{"when_disjoint", []string{"testdata/when_disjoint.cust"}, "when_disjoint.golden", 0},
		{"when_shadowed", []string{"testdata/when_shadowed.cust"}, "when_shadowed.golden", 1},
		{"dead", []string{"testdata/dead.rules.json"}, "dead.golden", 1},
		{"cycle", []string{"testdata/cycle.rules.json"}, "cycle.golden", 1},
		{"json", []string{"-json", "testdata/ambiguous.cust", "testdata/cycle.rules.json"}, "combined.json.golden", 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, code := runLint(t, c.args...)
			if code != c.wantCode {
				t.Errorf("exit = %d, want %d", code, c.wantCode)
			}
			checkGolden(t, c.golden, out)
		})
	}
}

func TestFigure6IsClean(t *testing.T) {
	out, code := runLint(t, "-figure6")
	if code != 0 || out != "figure6: ok\n" {
		t.Fatalf("figure6 lint: code=%d out=%q", code, out)
	}
}

func TestFailOnThreshold(t *testing.T) {
	// Shadowing is a warning: -fail-on error lets it pass...
	if _, code := runLint(t, "-fail-on", "error", "testdata/shadowed.cust"); code != 0 {
		t.Errorf("shadowed with -fail-on error: code = %d", code)
	}
	// ...but an ambiguity (error) still fails.
	if _, code := runLint(t, "-fail-on", "error", "testdata/ambiguous.cust"); code != 1 {
		t.Errorf("ambiguous with -fail-on error: code = %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, code := runLint(t); code != 2 {
		t.Errorf("no args: code = %d", code)
	}
	if _, code := runLint(t, "-fail-on", "fatal", "testdata/clean.cust"); code != 2 {
		t.Errorf("bad -fail-on: code = %d", code)
	}
	if _, code := runLint(t, "testdata/no-such-file.cust"); code != 1 {
		t.Errorf("missing file: code = %d", code)
	}
}

func TestBadManifest(t *testing.T) {
	dir := t.TempDir()
	for name, src := range map[string]string{
		"empty.json":   `{"rules": []}`,
		"badkind.json": `{"rules": [{"name": "x", "family": "reaction", "on": "Nope"}]}`,
		"badkey.json":  `{"rules": [{"name": "x", "family": "reaction", "on": "External", "emit": []}]}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, code := runLint(t, path); code != 1 {
			t.Errorf("%s: code = %d, want 1", name, code)
		}
	}
}

func TestDiagnosticsCarryPositions(t *testing.T) {
	out, _ := runLint(t, "testdata/ambiguous.cust")
	for _, want := range []string{
		"testdata/ambiguous.cust:4:1",
		"error: ambiguity",
		"error: conflict",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	out, _ = runLint(t, "testdata/cycle.rules.json")
	for _, want := range []string{
		"testdata/cycle.rules.json:4:5",
		"audit -> reaudit -> audit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}
