// Command gislint statically analyzes customization rule sets before they
// reach an engine: it compiles directive files (.cust) against the reference
// phone_net environment, loads hand-written reaction rule sets from JSON
// manifests (.json), and reports ambiguities, shadowed (dead) rules,
// triggering-graph cycles, duplicate contexts and conflicting directives
// with file:line:col positions.
//
// Usage:
//
//	gislint file.cust rules.json ...   lint files
//	gislint -figure6                   lint the paper's Figure 6 script
//	gislint -json ...                  machine-readable findings
//	gislint -fail-on error ...         exit non-zero only on errors
//
// Exit status: 0 when no finding reaches the -fail-on severity (default
// warning), 1 when one does or an input cannot be processed, 2 on usage
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/active"
	"repro/internal/custlang"
	"repro/internal/event"
	"repro/internal/geodb"
	"repro/internal/ruleanalysis"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gislint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
		failOn  = fs.String("fail-on", "warning", "lowest severity that fails the run (info, warning, error)")
		figure6 = fs.Bool("figure6", false, "lint the paper's Figure 6 script")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	threshold, ok := ruleanalysis.ParseSeverity(*failOn)
	if !ok {
		fmt.Fprintf(stderr, "gislint: unknown -fail-on severity %q\n", *failOn)
		return 2
	}
	if fs.NArg() == 0 && !*figure6 {
		fmt.Fprintln(stderr, "usage: gislint [-json] [-fail-on sev] [-figure6] <file.cust|rules.json>...")
		return 2
	}

	analyzer, err := referenceAnalyzer()
	if err != nil {
		fmt.Fprintln(stderr, "gislint:", err)
		return 1
	}

	type input struct{ path, src string }
	var inputs []input
	if *figure6 {
		inputs = append(inputs, input{"figure6", workload.Figure6Source})
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "gislint:", err)
			return 1
		}
		inputs = append(inputs, input{path, string(data)})
	}

	failed := false
	var all []ruleanalysis.Finding
	for _, in := range inputs {
		var findings []ruleanalysis.Finding
		var err error
		if strings.HasSuffix(in.path, ".json") {
			findings, err = lintManifest(in.path, in.src)
		} else {
			findings, err = lintDirectives(analyzer, in.path, in.src)
		}
		if err != nil {
			fmt.Fprintf(stderr, "gislint: %s: %v\n", in.path, err)
			failed = true
			continue
		}
		all = append(all, findings...)
		if !*jsonOut {
			if len(findings) == 0 {
				fmt.Fprintf(stdout, "%s: ok\n", in.path)
			} else {
				_ = ruleanalysis.WriteText(stdout, findings)
			}
		}
		if worst, ok := ruleanalysis.MaxSeverity(findings); ok && worst >= threshold {
			failed = true
		}
	}
	if *jsonOut {
		if err := ruleanalysis.WriteJSON(stdout, all); err != nil {
			fmt.Fprintln(stderr, "gislint:", err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}

// referenceAnalyzer builds the environment directives are linted against:
// the phone_net schema and the standard interface objects library — the
// same environment custc compiles in.
func referenceAnalyzer() (*custlang.Analyzer, error) {
	db, err := geodb.Open(geodb.Options{})
	if err != nil {
		return nil, err
	}
	if err := workload.DefineSchema(db); err != nil {
		return nil, err
	}
	lib, err := workload.StandardLibrary()
	if err != nil {
		return nil, err
	}
	return &custlang.Analyzer{Cat: db.Catalog(), Lib: lib}, nil
}

// lintDirectives runs the full analysis over a directive file: the
// whole-program checks over the parsed directives, then the engine-level
// checks over the rules they compile to (installed into a throwaway
// engine).
func lintDirectives(a *custlang.Analyzer, path, src string) ([]ruleanalysis.Finding, error) {
	ds, err := custlang.ParseFile(path, src)
	if err != nil {
		return nil, err
	}
	findings := custlang.CheckProgram(ds)
	engine := active.NewEngine()
	if _, err := a.InstallFile(engine, path, src); err != nil {
		return nil, err
	}
	findings = append(findings, engine.CheckSet()...)
	ruleanalysis.Sort(findings)
	return findings, nil
}

// manifestRule is the JSON shape of one hand-written rule: RuleInfo with
// string event kinds, so reaction rule sets written in Go can be described
// for the analyzer without compiling them.
type manifestRule struct {
	Name     string            `json:"name"`
	Family   string            `json:"family"`
	On       string            `json:"on"`
	Schema   string            `json:"schema"`
	Class    string            `json:"class"`
	Attr     string            `json:"attr"`
	Context  manifestContext   `json:"context"`
	Priority int               `json:"priority"`
	Cond     string            `json:"cond"`
	When     bool              `json:"when"`
	Emits    []manifestPattern `json:"emits"`
	Line     int               `json:"line"`
	Col      int               `json:"col"`
}

type manifestContext struct {
	User        string            `json:"user"`
	Category    string            `json:"category"`
	Application string            `json:"application"`
	Extra       map[string]string `json:"extra"`
}

type manifestPattern struct {
	Kind   string `json:"kind"`
	Schema string `json:"schema"`
	Class  string `json:"class"`
	Attr   string `json:"attr"`
	Name   string `json:"name"`
}

// lintManifest checks a JSON rule manifest describing a hand-written rule
// set.
func lintManifest(path, src string) ([]ruleanalysis.Finding, error) {
	var doc struct {
		Rules []manifestRule `json:"rules"`
	}
	dec := json.NewDecoder(strings.NewReader(src))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	if len(doc.Rules) == 0 {
		return nil, fmt.Errorf("manifest has no rules")
	}
	infos := make([]ruleanalysis.RuleInfo, len(doc.Rules))
	for i, m := range doc.Rules {
		on, ok := event.ParseKind(m.On)
		if !ok {
			return nil, fmt.Errorf("rule %q: unknown event kind %q", m.Name, m.On)
		}
		info := ruleanalysis.RuleInfo{
			Name:   m.Name,
			Family: m.Family,
			On:     on,
			Schema: m.Schema,
			Class:  m.Class,
			Attr:   m.Attr,
			Context: event.Context{
				User:        m.Context.User,
				Category:    m.Context.Category,
				Application: m.Context.Application,
				Extra:       m.Context.Extra,
			},
			Priority: m.Priority,
			Cond:     m.Cond,
			HasWhen:  m.When,
			Pos:      ruleanalysis.Position{File: path, Line: m.Line, Col: m.Col},
		}
		for _, p := range m.Emits {
			kind, ok := event.ParseKind(p.Kind)
			if !ok {
				return nil, fmt.Errorf("rule %q: unknown emitted event kind %q", m.Name, p.Kind)
			}
			info.Emits = append(info.Emits, event.Pattern{
				Kind: kind, Schema: p.Schema, Class: p.Class, Attr: p.Attr, Name: p.Name,
			})
		}
		infos[i] = info
	}
	return ruleanalysis.CheckRules(infos), nil
}
