// Command gisbench regenerates the paper's evaluation artifacts: every
// figure (F1–F7) reproduced behaviorally and every characterization
// benchmark (B1–B9) from DESIGN.md's experiment index.
//
// Usage:
//
//	gisbench -list              # show the experiment registry
//	gisbench -exp F7            # run one experiment
//	gisbench -exp F1,B2,B6      # run several
//	gisbench -exp all           # run everything
//	gisbench -exp all -quick    # reduced sizes (CI)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "experiment id(s), comma-separated, or 'all'")
		list    = flag.Bool("list", false, "list experiments")
		quick   = flag.Bool("quick", false, "reduced sizes for fast runs")
		metrics = flag.Bool("metrics", false, "print the metrics delta after each experiment")
		jsonOut = flag.String("json", "", "run the PR-4 perf series (decision cache, pipelined client, sharded pool) and write machine-readable results to this file")
		walOut  = flag.String("wal-json", "", "run the PR-5 durability series (WAL off vs synced vs group-committed) and write machine-readable results to this file")
		replOut = flag.String("repl-json", "", "run the PR-7 replication series (read throughput at 0/1/2/4 replicas) and write machine-readable results to this file")
		txnOut  = flag.String("txn-json", "", "run the PR-10 group-commit series (transaction throughput at 1/2/4/8 writers vs the fsync-per-insert baseline) and write machine-readable results to this file; fails unless scaling is monotonic and 8 writers clear 3x the baseline")
	)
	flag.Parse()

	if *txnOut != "" {
		rep, err := experiments.WriteTxnPerfJSON(*txnOut, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gisbench: group-commit series failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n\n", *txnOut)
		fmt.Printf("%-28s %14s %16s %16s\n", "benchmark", "ns/op", "txns/sec", "ops/sec")
		for _, r := range rep.Results {
			fmt.Printf("%-28s %14.0f %16.0f %16.0f\n", r.Name, r.NsPerOp, r.Extra["txns_per_sec"], r.Extra["ops_per_sec"])
		}
		fmt.Println()
		for _, k := range []string{"txn_scaleout_2w", "txn_scaleout_4w", "txn_scaleout_8w", "txn_group_commit_speedup"} {
			if v, ok := rep.Ratios[k]; ok {
				fmt.Printf("%-28s %14.2fx\n", k, v)
			}
		}
		return
	}

	if *replOut != "" {
		rep, err := experiments.WriteReplPerfJSON(*replOut, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gisbench: replication series failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n\n", *replOut)
		fmt.Printf("%-28s %14s %16s\n", "benchmark", "ns/op", "reads/sec")
		for _, r := range rep.Results {
			fmt.Printf("%-28s %14.0f %16.0f\n", r.Name, r.NsPerOp, r.Extra["reads_per_sec"])
		}
		fmt.Println()
		for _, k := range []string{"read_scaleout_1_replica", "read_scaleout_2_replicas", "read_scaleout_4_replicas"} {
			if v, ok := rep.Ratios[k]; ok {
				fmt.Printf("%-28s %14.2fx\n", k, v)
			}
		}
		return
	}

	if *walOut != "" {
		rep, err := experiments.WriteWALPerfJSON(*walOut, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gisbench: durability series failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n\n", *walOut)
		fmt.Printf("%-28s %14s %16s\n", "benchmark", "ns/op", "inserts/sec")
		for _, r := range rep.Results {
			persec := 0.0
			if r.NsPerOp > 0 {
				persec = 1e9 / r.NsPerOp
			}
			fmt.Printf("%-28s %14.0f %16.0f\n", r.Name, r.NsPerOp, persec)
		}
		fmt.Println()
		for _, k := range []string{"wal_synced_cost", "wal_grouped8_cost", "wal_group_commit_speedup"} {
			if v, ok := rep.Ratios[k]; ok {
				fmt.Printf("%-28s %14.2fx\n", k, v)
			}
		}
		return
	}

	if *jsonOut != "" {
		rep, err := experiments.WritePerfJSON(*jsonOut, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gisbench: perf series failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n\n", *jsonOut)
		fmt.Printf("%-28s %14s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "B/op")
		for _, r := range rep.Results {
			fmt.Printf("%-28s %14.0f %12d %12d\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
		fmt.Println()
		for _, k := range []string{"dispatch_cached_speedup", "pipeline_depth16_speedup", "pool_sharded_speedup"} {
			if v, ok := rep.Ratios[k]; ok {
				fmt.Printf("%-28s %14.2fx\n", k, v)
			}
		}
		return
	}

	if *list || *expFlag == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-3s %-58s (%s)\n", e.ID, e.Title, e.Paper)
		}
		if *expFlag == "" {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	failed := false
	for i, id := range ids {
		e, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "gisbench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("============ %s: %s [%s] ============\n\n", e.ID, e.Title, e.Paper)
		before := obs.Default().Snapshot()
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "gisbench: %s failed: %v\n", e.ID, err)
			failed = true
		}
		if *metrics {
			fmt.Printf("\n---- %s metrics delta ----\n", e.ID)
			delta := obs.Default().Snapshot().Sub(before)
			if err := delta.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "gisbench: metrics delta: %v\n", err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
