// Command custc is the customization-language compiler: it parses, analyzes
// and compiles directive files against the telephone-network schema and the
// standard interface objects library, reporting the generated rules in the
// paper's On/If/Then notation. Exit status is non-zero on any error, making
// it usable as a directive linter.
//
// Usage:
//
//	custc file.cust          compile a file
//	custc -                  compile stdin
//	custc -figure6           compile the paper's Figure 6 script
//	custc -ast file.cust     also print the normalized directive
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	gisui "repro"
	"repro/internal/custlang"
	"repro/internal/event"
	"repro/internal/spec"
	"repro/internal/workload"
)

func main() {
	var (
		figure6  = flag.Bool("figure6", false, "compile the paper's Figure 6 script")
		printAST = flag.Bool("ast", false, "print the normalized directive(s)")
	)
	flag.Parse()

	var src, file string
	switch {
	case *figure6:
		src, file = workload.Figure6Source, "figure6"
	case flag.NArg() == 1 && flag.Arg(0) == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		src, file = string(data), "<stdin>"
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src, file = string(data), flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: custc [-ast] <file>|-|-figure6")
		os.Exit(2)
	}

	// The reference environment: phone_net schema + standard library.
	lib, err := workload.StandardLibrary()
	if err != nil {
		fatal(err)
	}
	sys := gisui.MustOpen(gisui.Config{Library: lib})
	defer sys.Close()
	if err := workloadDefine(sys); err != nil {
		fatal(err)
	}
	analyzer := &custlang.Analyzer{Cat: sys.DB.Catalog(), Lib: lib}

	units, err := analyzer.CompileSourceFile(file, src)
	if err != nil {
		fatal(err)
	}
	total := 0
	for i, u := range units {
		fmt.Printf("directive %d (context %s):\n", i+1, u.Directive.Context)
		if *printAST {
			fmt.Println("  normalized form:")
			printIndented(u.Directive.String(), "    ")
		}
		for j, r := range u.Rules {
			cust, err := r.Customize(event.Event{Ctx: r.Context})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  R%d: On %s If %s Then %s\n", j+1, r.On, r.Context, actionText(cust))
			total++
		}
	}
	fmt.Printf("ok: %d directive(s), %d rule(s)\n", len(units), total)
}

func workloadDefine(sys *gisui.System) error {
	return workload.DefineSchema(sys.DB)
}

func actionText(c spec.Customization) string {
	return c.String()
}

func printIndented(s, prefix string) {
	for len(s) > 0 {
		line := s
		if i := indexByte(s, '\n'); i >= 0 {
			line, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		fmt.Println(prefix + line)
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "custc:", err)
	os.Exit(1)
}
