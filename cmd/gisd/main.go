// Command gisd is the weak-integration DBMS daemon of §3.5: it hosts a
// generated telephone-network database with the Figure 6 customization
// rules (and any extra directive files) and serves the wire protocol over
// TCP. Connect gisbrowse with -connect to drive it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	gisui "repro"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7497", "listen address")
		dbPath     = flag.String("db", "", "page file path (empty = in-memory; an existing file is recovered and NOT regenerated)")
		poles      = flag.Int("poles", 25, "poles per zone")
		zones      = flag.Int("zones", 2, "zones per side")
		seed       = flag.Int64("seed", 1997, "generator seed")
		directives = flag.String("directives", "figure6", "directive file to install ('figure6', 'none', or a path)")
		constrain  = flag.Bool("constraints", true, "install topological constraints (poles in zones, zones disjoint)")
		metrics    = flag.String("metrics", "", "HTTP listen address serving the metrics text exposition at /metrics (empty = disabled)")
		idle       = flag.Duration("idle-timeout", 5*time.Minute, "disconnect clients idle longer than this (0 = never)")
		maxConns   = flag.Int("max-conns", 0, "maximum concurrent client connections (0 = unlimited)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		pipeline   = flag.Int("pipeline", 1, "max concurrent requests per connection (1 = sequential, pre-pipelining behavior)")
		wal        = flag.Bool("wal", true, "write-ahead logging for a -db file: acknowledged mutations survive a crash (false = flush-on-close only)")
		ckptEvery  = flag.Int("checkpoint-every", 1024, "checkpoint (flush + truncate the WAL) after this many commits; bounds replay on restart (<0 = never)")
		txn        = flag.Bool("txn", true, "serve the txn verb: clients may commit atomic mutation batches sharing one group-commit fsync (false = per-mutation commits only)")
		syncEvery  = flag.Int("sync-every", 0, "deprecated and ignored: group commit coalesces concurrent fsyncs without deferring durability")

		replListen = flag.String("repl-listen", "", "serve the WAL ship stream to replicas on this address (primary role; forces the WAL on)")
		replicaOf  = flag.String("replica-of", "", "follow the primary's ship stream at this address and serve read-only verbs (replica role; most workload flags are ignored)")
		maxLag     = flag.Int("max-lag", 1024, "replica: stop serving reads after falling this many WAL records behind the primary (<0 = serve regardless)")
		slowApply  = flag.Duration("slow-apply", 0, "replica: warn when applying one record batch takes longer than this (0 = never)")

		trace     = flag.Bool("trace", true, "distributed tracing: span every request tree, retain slow/error traces in the tail sampler")
		traceSlow = flag.Int("trace-slowest", 16, "tail sampler: always retain the N slowest complete traces")
		traceRate = flag.Float64("trace-head-rate", 0.01, "tail sampler: fraction of ordinary (fast, error-free) traces retained")
		traceMax  = flag.Int("trace-max", 64, "tail sampler: maximum retained traces (oldest non-slow evicted first)")
		slowReq   = flag.Duration("slow-request", 250*time.Millisecond, "log a warn line for requests slower than this (0 = never)")
		logLevel  = flag.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	)
	flag.Parse()
	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger := obs.NewLogger(os.Stderr, lvl).With("proc", "gisd")
	if *syncEvery != 0 {
		logger.Warn("-sync-every is deprecated and ignored: group commit replaced fsync batching (every acknowledged commit is durable)")
	}

	if *replicaOf != "" {
		runReplica(logger, *addr, *replicaOf, *maxLag, *slowApply, *idle, *maxConns, *pipeline, *drain, *metrics)
		return
	}

	lib, err := workload.StandardLibrary()
	if err != nil {
		fatal(err)
	}
	cfg := gisui.Config{
		Name: "GEO", Path: *dbPath, Library: lib,
		DisableWAL: !*wal, CheckpointEvery: *ckptEvery,
	}
	if *replListen != "" {
		// A primary ships its WAL, so it must have one even in-memory.
		if !*wal {
			fatal(fmt.Errorf("-repl-listen requires the WAL (-wal=true)"))
		}
		if *dbPath == "" {
			cfg.WALFile = storage.NewMemLogFile()
		}
	}
	sys, err := gisui.Open(cfg)
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	var poleCount, ductCount int
	if sys.DB.Count(workload.SchemaName, "Pole") > 0 {
		// Recovered an existing database: re-register method code only.
		if err := workload.RegisterPoleMethods(sys.DB); err != nil {
			fatal(err)
		}
		poleCount = sys.DB.Count(workload.SchemaName, "Pole")
		ductCount = sys.DB.Count(workload.SchemaName, "Duct")
		fmt.Printf("gisd: recovered existing database from %s (%d WAL records replayed)\n",
			*dbPath, sys.DB.ReplayedRecords())
	} else {
		net, err := workload.BuildPhoneNet(sys.DB, workload.PhoneNetOptions{
			Seed: *seed, ZonesPerSide: *zones, PolesPerZone: *poles})
		if err != nil {
			fatal(err)
		}
		poleCount, ductCount = len(net.Poles), len(net.Ducts)
	}
	switch *directives {
	case "none":
	case "figure6":
		if _, err := sys.InstallDirectives(workload.Figure6Source); err != nil {
			fatal(err)
		}
	default:
		data, err := os.ReadFile(*directives)
		if err != nil {
			fatal(err)
		}
		if _, err := sys.InstallDirectives(string(data)); err != nil {
			fatal(err)
		}
	}
	if *constrain {
		for _, c := range []topo.Constraint{
			{Name: "pole-in-zone", Schema: workload.SchemaName, Class: "Pole",
				With: "Zone", Relation: geom.Inside, Mode: topo.Require},
			{Name: "zones-disjoint", Schema: workload.SchemaName, Class: "Zone",
				With: "Zone", Relation: geom.Overlap, Mode: topo.Forbid},
		} {
			if err := sys.AddConstraint(c); err != nil {
				fatal(err)
			}
		}
	}
	// EnableTracing must run before NewServer below: NewServer snapshots the
	// sampler into the server's TraceStore for the trace verb.
	if *trace {
		sys.EnableTracing(obs.TailSamplerOptions{
			SlowestN:  *traceSlow,
			HeadRate:  *traceRate,
			MaxTraces: *traceMax,
		})
	}
	fmt.Printf("gisd: %s\n", sys.Describe())
	fmt.Printf("gisd: %d poles, %d ducts; serving on %s\n", poleCount, ductCount, *addr)
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			obs.Default().WriteText(w)
		})
		mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
			if sys.Traces == nil {
				http.Error(w, "tracing disabled (-trace=false)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(sys.Traces.Traces()); err != nil {
				logger.Warn("trace export failed", "err", err)
			}
		})
		mux.HandleFunc("/traces/chrome", func(w http.ResponseWriter, _ *http.Request) {
			if sys.Traces == nil {
				http.Error(w, "tracing disabled (-trace=false)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="gisd-trace.json"`)
			if err := obs.WriteChromeTrace(w, sys.Traces.Traces()); err != nil {
				logger.Warn("chrome trace export failed", "err", err)
			}
		})
		// Profiling rides the same mux (net/http/pprof registers on the
		// default mux only, so wire its handlers explicitly).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "gisd: metrics:", err)
			}
		}()
		fmt.Printf("gisd: metrics on http://%s/metrics (also /traces, /traces/chrome, /debug/pprof/)\n", *metrics)
	}

	// Graceful shutdown: on SIGINT/SIGTERM the server stops accepting,
	// drains in-flight requests under the -drain deadline, then the buffer
	// pool is flushed (sys.Close) so a -db file stays durable.
	srv := sys.NewServer()
	srv.IdleTimeout = *idle
	srv.MaxConns = *maxConns
	srv.PipelineDepth = *pipeline
	srv.DisableTxn = !*txn
	srv.Log = logger
	srv.SlowRequest = *slowReq
	srv.Logf = func(format string, args ...any) {
		logger.Warn(fmt.Sprintf(format, args...))
	}
	if *replListen != "" {
		prim, err := repl.NewPrimary(sys.DB, repl.PrimaryOptions{
			Tracer: sys.Tracer,
			Logf:   func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
		})
		if err != nil {
			fatal(err)
		}
		defer prim.Close()
		srv.ReplStatus = prim.Status
		go func() {
			if err := prim.ListenAndServe(*replListen); err != nil {
				logger.Warn("replication listener failed", "err", err)
			}
		}()
		fmt.Printf("gisd: primary shipping WAL on %s\n", *replListen)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil {
			fatal(err)
		}
	case sig := <-sigCh:
		fmt.Printf("gisd: %v — draining (deadline %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gisd: drain incomplete, connections force-closed: %v\n", err)
		} else {
			fmt.Println("gisd: drained cleanly")
		}
		if err := sys.Close(); err != nil {
			fatal(err)
		}
	}
}

// runReplica is the -replica-of role: follow the primary's ship stream,
// apply it into a read-only follower database, and serve the idempotent
// retrieval verbs (plus repl_status) until signalled. Mutation verbs are
// answered with an error directing clients to the primary; the workload,
// directive and constraint flags do not apply — a replica's state is the
// primary's log and nothing else.
func runReplica(logger *obs.Logger, addr, primary string, maxLag int, slowApply, idle time.Duration, maxConns, pipeline int, drain time.Duration, metrics string) {
	rep := repl.NewReplica(repl.ReplicaOptions{
		Addr:      primary,
		MaxLag:    maxLag,
		SlowApply: slowApply,
		Logf:      func(format string, args ...any) { logger.Warn(fmt.Sprintf(format, args...)) },
	})
	rep.Start()
	defer rep.Close()

	srv := server.New(rep)
	srv.IdleTimeout = idle
	srv.MaxConns = maxConns
	srv.PipelineDepth = pipeline
	srv.Log = logger
	srv.ReplStatus = rep.Status
	srv.Logf = func(format string, args ...any) { logger.Warn(fmt.Sprintf(format, args...)) }

	fmt.Printf("gisd: replica of %s; serving reads on %s (max lag %d)\n", primary, addr, maxLag)
	if metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			obs.Default().WriteText(w)
		})
		go func() {
			if err := http.ListenAndServe(metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "gisd: metrics:", err)
			}
		}()
		fmt.Printf("gisd: metrics on http://%s/metrics\n", metrics)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(addr) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil {
			fatal(err)
		}
	case sig := <-sigCh:
		fmt.Printf("gisd: %v — draining (deadline %v)\n", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gisd: drain incomplete, connections force-closed: %v\n", err)
		} else {
			fmt.Println("gisd: drained cleanly")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gisd:", err)
	os.Exit(1)
}
