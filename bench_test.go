// Benchmarks regenerating the paper's evaluation artifacts, one family per
// experiment in DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/gisbench prints the same series as formatted tables (B3, the cost
// model, has no time dimension and lives only there).
package gisui_test

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/active"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/geodb"
	"repro/internal/geom"
	"repro/internal/hardwired"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/storage"
	"repro/internal/topo"
	"repro/internal/ui"
	"repro/internal/workload"
)

// --- Figures: the reproduction paths themselves ---------------------------

// BenchmarkFigure4DefaultWindows measures building the three default
// windows of Figure 4 (schema -> class -> instance, generic user).
func BenchmarkFigure4DefaultWindows(b *testing.B) {
	f := experiments.MustFixture(16, 1, false)
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := f.Sys.NewSession(experiments.MariaCtx)
		if err := s.Connect(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.OpenSchema(workload.SchemaName); err != nil {
			b.Fatal(err)
		}
		if _, err := s.OpenClass(workload.SchemaName, "Pole"); err != nil {
			b.Fatal(err)
		}
		if _, err := s.OpenInstance(f.Net.Poles[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Compile measures compiling the Figure 6 script into rules.
func BenchmarkFigure6Compile(b *testing.B) {
	f := experiments.MustFixture(1, 1, false)
	defer f.Close()
	a := f.Sys.Analyzer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.CompileSource(workload.Figure6Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7CustomizedWindows measures the customized session of
// Figure 7 (rules fire, poleWidget + composed attributes build).
func BenchmarkFigure7CustomizedWindows(b *testing.B) {
	f := experiments.MustFixture(16, 1, true)
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := f.Sys.NewSession(experiments.JulianoCtx)
		if err := s.Connect(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.OpenSchema(workload.SchemaName); err != nil {
			b.Fatal(err)
		}
		if _, err := s.OpenInstance(f.Net.Poles[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B1: rule selection ----------------------------------------------------

func ruleEngine(b *testing.B, contexts int, indexed bool) *active.Engine {
	b.Helper()
	f := experiments.MustFixture(1, 1, false)
	b.Cleanup(func() { f.Close() })
	engine := active.NewEngine()
	engine.Indexed = indexed
	// These benchmarks measure the candidate scan itself; the decision
	// cache would collapse the repeated probe into a map hit and hide the
	// indexed-vs-linear contrast (BenchmarkDispatchCached measures the
	// cache instead).
	engine.CacheDecisions = false
	a := f.Sys.Analyzer()
	for i, ctx := range workload.Contexts(contexts) {
		if _, err := a.Install(engine, workload.DirectiveFor(ctx, i)); err != nil {
			b.Fatal(err)
		}
	}
	return engine
}

func benchRuleSelection(b *testing.B, contexts int, indexed bool) {
	engine := ruleEngine(b, contexts, indexed)
	probe := event.Event{
		Kind: event.GetClass, Schema: workload.SchemaName, Class: "Pole",
		Ctx: event.Context{User: "user0000", Category: "planners", Application: "pole_manager"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engine.HandleEvent(probe); err != nil {
			b.Fatal(err)
		}
		engine.TakeCustomization(probe)
	}
}

func BenchmarkRuleSelectionIndexed(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("contexts=%d", n), func(b *testing.B) {
			benchRuleSelection(b, n, true)
		})
	}
}

func BenchmarkRuleSelectionLinear(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("contexts=%d", n), func(b *testing.B) {
			benchRuleSelection(b, n, false)
		})
	}
}

// --- B2: window build latency ----------------------------------------------

func BenchmarkWindowBuild(b *testing.B) {
	f := experiments.MustFixture(32, 1, true)
	defer f.Close()
	db := f.Sys.DB
	hw := hardwired.New(db, hardwired.VariantPoleManager)
	info, err := db.GetClass(experiments.MariaCtx, workload.SchemaName, "Pole")
	if err != nil {
		b.Fatal(err)
	}
	instances, err := db.Select(workload.SchemaName, "Pole", nil)
	if err != nil {
		b.Fatal(err)
	}
	units, err := f.Sys.Analyzer().CompileSource(workload.Figure6Source)
	if err != nil {
		b.Fatal(err)
	}
	var classCust = func() *spec.ClassCust {
		for _, r := range units[0].Rules {
			c, err := r.Customize(event.Event{})
			if err == nil && c.Level == 2 {
				v := c.Class
				return &v
			}
		}
		return nil
	}()

	b.Run("hardwired", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hw.ClassWindow(info, instances); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.Sys.Builder.BuildClassWindow(info, instances, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("customized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.Sys.Builder.BuildClassWindow(info, instances, classCust); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- B4: interaction dispatch ----------------------------------------------

func BenchmarkDispatch(b *testing.B) {
	for _, rules := range []int{0, 64} {
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) {
			f := experiments.MustFixture(8, 1, false)
			defer f.Close()
			a := f.Sys.Analyzer()
			for i, ctx := range workload.Contexts(rules) {
				if _, err := a.Install(f.Sys.Engine, workload.DirectiveFor(ctx, i)); err != nil {
					b.Fatal(err)
				}
			}
			s := f.Sys.NewSession(event.Context{
				User: "user0000", Category: "planners", Application: "pole_manager"})
			if err := s.Connect(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.OpenClass(workload.SchemaName, "Duct"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B5: buffer pool ---------------------------------------------------------

func BenchmarkBufferPool(b *testing.B) {
	for _, policy := range []storage.ReplacementPolicy{storage.PolicyLRU, storage.PolicyClock} {
		for _, size := range []int{16, 256} {
			b.Run(fmt.Sprintf("%s/pages=%d", policy, size), func(b *testing.B) {
				db, err := geodb.Open(geodb.Options{PoolSize: size, Policy: policy})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				net, err := workload.BuildPhoneNet(db, workload.PhoneNetOptions{
					Seed: 5, ZonesPerSide: 2, PolesPerZone: 60, PictureBytes: 2048})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					oid := net.Poles[(i*31)%len(net.Poles)]
					if _, err := db.GetValue(event.Context{}, oid); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(db.Pool().Stats().HitRatio(), "hit-ratio")
			})
		}
	}
}

// --- B6: spatial queries -----------------------------------------------------

func BenchmarkSpatialQuery(b *testing.B) {
	for _, perZone := range []int{250, 2000} {
		db, err := geodb.Open(geodb.Options{PoolSize: 4096})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.BuildPhoneNet(db, workload.PhoneNetOptions{
			Seed: 7, ZonesPerSide: 2, PolesPerZone: perZone, DuctEvery: 0}); err != nil {
			b.Fatal(err)
		}
		win := geom.R(400, 400, 600, 600)
		total := perZone * 4
		b.Run(fmt.Sprintf("rtree/poles=%d", total), func(b *testing.B) {
			db.UseSpatialIndex = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Window(workload.SchemaName, "Pole", win); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scan/poles=%d", total), func(b *testing.B) {
			db.UseSpatialIndex = false
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Window(workload.SchemaName, "Pole", win); err != nil {
					b.Fatal(err)
				}
			}
		})
		db.Close()
	}
}

// --- B7: topological constraints --------------------------------------------

func BenchmarkTopoGuard(b *testing.B) {
	for _, nc := range []int{0, 2} {
		b.Run(fmt.Sprintf("constraints=%d", nc), func(b *testing.B) {
			db, err := geodb.Open(geodb.Options{PoolSize: 4096})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if _, err := workload.BuildPhoneNet(db, workload.PhoneNetOptions{
				Seed: 3, ZonesPerSide: 2, PolesPerZone: 50}); err != nil {
				b.Fatal(err)
			}
			engine := active.NewEngine()
			db.Bus().Subscribe(engine)
			guard := topo.NewGuard(db)
			constraints := []topo.Constraint{
				{Name: "pole-in-zone", Schema: workload.SchemaName, Class: "Pole",
					With: "Zone", Relation: geom.Inside, Mode: topo.Require},
				{Name: "poles-distinct", Schema: workload.SchemaName, Class: "Pole",
					With: "Pole", Relation: geom.EqualRel, Mode: topo.Forbid},
			}
			for i := 0; i < nc; i++ {
				if err := guard.Install(engine, constraints[i]); err != nil {
					b.Fatal(err)
				}
			}
			ctx := event.Context{Application: "bench"}
			b.ReportAllocs()
			b.ResetTimer()
			vetoes := 0
			for i := 0; i < b.N; i++ {
				// Coordinates may repeat or land on zone boundaries; a veto
				// is the constraint working, not a bench failure.
				x, y := float64((i*37)%2000), float64((i*53)%2000)
				_, err := db.InsertMap(ctx, workload.SchemaName, "Pole",
					map[string]catalog.Value{"pole_location": catalog.GeomVal(geom.Pt(x, y))})
				switch {
				case err == nil:
				case errors.Is(err, geodb.ErrVetoed):
					vetoes++
				default:
					b.Fatal(err)
				}
			}
			if nc == 0 && vetoes > 0 {
				b.Fatalf("vetoes without constraints: %d", vetoes)
			}
		})
	}
}

// --- B8: integration styles --------------------------------------------------

func BenchmarkIntegration(b *testing.B) {
	f := experiments.MustFixture(16, 1, true)
	defer f.Close()

	run := func(b *testing.B, backend ui.Backend) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := backend.GetSchema(experiments.JulianoCtx, workload.SchemaName); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("strong", func(b *testing.B) { run(b, f.Sys.Backend) })
	b.Run("pipe", func(b *testing.B) {
		srvConn, cliConn := net.Pipe()
		srv := server.New(f.Sys.Backend)
		go srv.ServeConn(srvConn)
		cli := client.NewClient(cliConn)
		defer func() {
			cli.Close()
			srv.Close()
		}()
		run(b, cli)
	})
	b.Run("tcp", func(b *testing.B) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(f.Sys.Backend)
		go srv.Serve(l)
		cli, err := client.Dial(l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			cli.Close()
			srv.Close()
		}()
		run(b, cli)
	})
}

// --- B9: end-to-end sessions -------------------------------------------------

func BenchmarkSession(b *testing.B) {
	for _, withRules := range []bool{false, true} {
		name := "default"
		ctx := experiments.MariaCtx
		if withRules {
			name = "customized"
			ctx = experiments.JulianoCtx
		}
		b.Run(name, func(b *testing.B) {
			f := experiments.MustFixture(32, 1, withRules)
			defer f.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := f.Sys.NewSession(ctx)
				if err := s.Connect(); err != nil {
					b.Fatal(err)
				}
				if _, err := s.OpenSchema(workload.SchemaName); err != nil {
					b.Fatal(err)
				}
				if !withRules {
					if _, err := s.OpenClass(workload.SchemaName, "Pole"); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := s.OpenInstance(f.Net.Poles[i%len(f.Net.Poles)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: R-tree node fan-out (DESIGN.md §5 #4) -------------------------

func BenchmarkRTreeFanout(b *testing.B) {
	const n = 20000
	rects := make([]geom.Rect, n)
	for i := range rects {
		x := float64(i%141) * 13.7
		y := float64(i%173) * 11.3
		rects[i] = geom.R(x, y, x+5, y+5)
	}
	win := geom.R(300, 300, 500, 500)
	for _, fanout := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			tr := rtree.NewWithCapacity(fanout, fanout/2)
			for i, r := range rects {
				tr.Insert(r, uint64(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			var buf []uint64
			for i := 0; i < b.N; i++ {
				buf = tr.Search(win, buf[:0])
			}
		})
	}
}

// --- Ablation: renderer cost relative to window build (DESIGN.md §5 #5) ------

func BenchmarkRender(b *testing.B) {
	f := experiments.MustFixture(64, 1, false)
	defer f.Close()
	info, err := f.Sys.DB.GetClass(experiments.MariaCtx, workload.SchemaName, "Pole")
	if err != nil {
		b.Fatal(err)
	}
	instances, err := f.Sys.DB.Select(workload.SchemaName, "Pole", nil)
	if err != nil {
		b.Fatal(err)
	}
	win, err := f.Sys.Builder.BuildClassWindow(info, instances, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("text", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := render.Text(win); len(out) == 0 {
				b.Fatal("empty rendering")
			}
		}
	})
	b.Run("svg", func(b *testing.B) {
		area := win.Find("map")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := render.SVG(area, render.SVGOptions{Width: 640, Height: 480}); len(out) == 0 {
				b.Fatal("empty rendering")
			}
		}
	})
}

// --- Observability overhead ------------------------------------------------

// BenchmarkObsDisabledOverhead pins the cost of the observability layer on a
// hot path with no span sink attached: the primitives must be a handful of
// atomic adds with zero allocation (check the allocs/op column), and the
// engine dispatch path must stay within a few percent of its pre-obs cost
// (compare against BenchmarkRuleSelectionIndexed across commits).
func BenchmarkObsDisabledOverhead(b *testing.B) {
	b.Run("primitives", func(b *testing.B) {
		r := obs.NewRegistry()
		c := r.Counter("c")
		h := r.Histogram("h", obs.LatencyBuckets)
		tr := obs.NewTracer()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			sw := obs.Start(h)
			sw.Stop()
			sp := tr.Start("op")
			sp.Set("k", "v")
			sp.Finish()
		}
	})
	b.Run("dispatch", func(b *testing.B) {
		engine := ruleEngine(b, 64, true)
		probe := event.Event{
			Kind: event.GetClass, Schema: workload.SchemaName, Class: "Pole",
			Ctx: event.Context{User: "user0000", Category: "planners", Application: "pole_manager"},
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := engine.HandleEvent(probe); err != nil {
				b.Fatal(err)
			}
			engine.TakeCustomization(probe)
		}
	})
	b.Run("dispatch-spans", func(b *testing.B) {
		// The enabled path, for contrast: a 4k-span ring attached.
		engine := ruleEngine(b, 64, true)
		engine.AttachSpans(obs.NewSpanRecorder(4096))
		probe := event.Event{
			Kind: event.GetClass, Schema: workload.SchemaName, Class: "Pole",
			Ctx: event.Context{User: "user0000", Category: "planners", Application: "pole_manager"},
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := engine.HandleEvent(probe); err != nil {
				b.Fatal(err)
			}
			engine.TakeCustomization(probe)
		}
	})
}

// --- PR 4: decision cache, pipelined client, sharded pool -------------------

// benchDispatchFigure6 measures one dispatch of the Figure 6 schema
// decision against an engine that also carries a population of
// category-scoped background rules (a shared installation). The cached and
// uncached variants are identical except for Engine.CacheDecisions.
func benchDispatchFigure6(b *testing.B, cached bool) {
	d, err := experiments.NewDispatchBench(cached)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatchCached(b *testing.B)   { benchDispatchFigure6(b, true) }
func BenchmarkDispatchUncached(b *testing.B) { benchDispatchFigure6(b, false) }

// BenchmarkClientPipelined measures requests through ONE multiplexed client
// connection against a real pipelined server.Server over TCP, with the
// backend paying ~200µs of simulated DBMS latency per request. depth is the
// number of concurrent callers; depth=1 is the old lockstep behavior.
func BenchmarkClientPipelined(b *testing.B) {
	p, err := experiments.NewPipelineBench(200 * time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			if err := p.Do(depth, b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPoolSharded contrasts the single-mutex buffer pool with the
// striped one under concurrent Fetch/Unpin traffic (more pages than frames,
// so the replacement policy stays busy).
func BenchmarkPoolSharded(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := experiments.NewPoolBench(256, 512, shards)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { p.Close() })
			var seq atomic.Int64
			b.SetParallelism(4)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(seq.Add(1)) * 131
				for pb.Next() {
					if err := p.Step(i); err != nil {
						b.Error(err)
						return
					}
					i += 13
				}
			})
		})
	}
}

// BenchmarkFigure4DefaultWindowsParallel is Figure 4 with concurrent
// sessions: the engine's RLock'd candidate scan, the decision cache and the
// sharded pool all see simultaneous readers.
func BenchmarkFigure4DefaultWindowsParallel(b *testing.B) {
	f := experiments.MustFixture(16, 1, false)
	defer f.Close()
	b.SetParallelism(4)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := f.Sys.NewSession(experiments.MariaCtx)
			if err := s.Connect(); err != nil {
				b.Error(err)
				return
			}
			if _, err := s.OpenSchema(workload.SchemaName); err != nil {
				b.Error(err)
				return
			}
			if _, err := s.OpenInstance(f.Net.Poles[0]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchWALInsert measures acknowledged inserts under one durability
// configuration (the B-series for PR 5; `gisbench -wal-json` writes the
// same workloads as BENCH_PR5.json). The grouped variant runs the insert
// loop from parallel goroutines so concurrent commits coalesce onto shared
// fsyncs (DESIGN.md §15).
func benchWALInsert(b *testing.B, name string, disable, grouped bool) {
	wb, err := experiments.NewWALBench(b.TempDir(), name, disable)
	if err != nil {
		b.Fatal(err)
	}
	defer wb.Close()
	b.ReportAllocs()
	b.ResetTimer()
	if grouped {
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := wb.Step(); err != nil {
					b.Error(err)
					return
				}
			}
		})
		return
	}
	for i := 0; i < b.N; i++ {
		if err := wb.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALInsertOff(b *testing.B)     { benchWALInsert(b, "off", true, false) }
func BenchmarkWALInsertSynced(b *testing.B)  { benchWALInsert(b, "synced", false, false) }
func BenchmarkWALInsertGrouped(b *testing.B) { benchWALInsert(b, "grouped", false, true) }
